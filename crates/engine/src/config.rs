//! Cluster and task-execution configuration.
//!
//! Defaults are calibrated to the paper's testbed (Section IV-A): a node with
//! 4 GB of RAM running synthetic map-only jobs over single-block 512 MB HDFS
//! files, with task durations around 80 seconds, a 3-second heartbeat, and
//! `swappiness = 0`.

use mrp_dfs::{NodeId, RackId};
use mrp_sim::{SimDuration, SimTime, MIB};
use mrp_simos::NodeOsConfig;
use serde::{Deserialize, Serialize};

/// Execution-model defaults shared by all tasks unless a job overrides them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskDefaults {
    /// Time to fork and initialise the child task JVM.
    pub jvm_startup: SimDuration,
    /// Memory footprint of the Hadoop execution engine inside every task
    /// (JVM, I/O buffers, sort buffers) regardless of user code.
    pub base_memory: u64,
    /// Fraction of the base footprint that is dirty anonymous memory (the
    /// rest is mapped code and read-only data that can be dropped for free).
    pub base_memory_dirty_fraction: f64,
    /// Rate at which the synthetic mappers read **and parse** their input;
    /// this, not raw disk bandwidth, bounds task duration (≈6.6 MiB/s gives
    /// the paper's ≈80 s tasks over 512 MB splits).
    pub parse_rate_bytes_per_sec: f64,
    /// Output size as a fraction of input size for map tasks.
    pub output_ratio: f64,
    /// Fixed cost of task commit (renaming output, reporting completion).
    pub commit_overhead: SimDuration,
    /// Duration of the cleanup attempt that removes the partial output of a
    /// killed task; it occupies the task's slot before the slot is released.
    pub cleanup_duration: SimDuration,
    /// Shuffle copy rate for reduce tasks (network-bound).
    pub shuffle_bytes_per_sec: f64,
}

impl Default for TaskDefaults {
    fn default() -> Self {
        TaskDefaults {
            jvm_startup: SimDuration::from_millis(3_000),
            base_memory: 192 * MIB,
            base_memory_dirty_fraction: 0.6,
            parse_rate_bytes_per_sec: 6.7 * MIB as f64,
            output_ratio: 0.05,
            commit_overhead: SimDuration::from_millis(1_200),
            cleanup_duration: SimDuration::from_millis(3_000),
            shuffle_bytes_per_sec: 80.0 * MIB as f64,
        }
    }
}

/// Configuration of a single cluster node.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Operating-system model for the node (RAM, swap, disk).
    pub os: NodeOsConfig,
    /// Number of concurrent map tasks allowed
    /// (`mapred.tasktracker.map.tasks.maximum`).
    pub map_slots: u32,
    /// Number of concurrent reduce tasks allowed.
    pub reduce_slots: u32,
}

impl NodeConfig {
    /// The paper's evaluation node: default OS model (4 GB RAM, swappiness 0)
    /// with a single map slot and a single reduce slot, so that the two jobs
    /// of the scenario contend for the same slot.
    pub fn paper_node() -> Self {
        NodeConfig {
            os: NodeOsConfig::default(),
            map_slots: 1,
            reduce_slots: 1,
        }
    }
}

/// How much schedule tracing the cluster records.
///
/// Recording a [`TraceEntry`](crate::metrics::TraceEntry) allocates (the
/// human-readable detail string in particular), so throughput-sensitive runs
/// — the `sim_throughput` bench, large-scale sweeps — switch tracing off and
/// pay nothing for it; the paper-scale presets keep it on because the
/// examples print Figure-1-style schedules from the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Record nothing; `Cluster::trace()` stays empty.
    Off,
    /// Record every schedule event (launch, suspend, resume, kill, completion).
    #[default]
    Schedule,
}

/// How the cluster refreshes the per-node scheduler views and per-rack
/// free-slot counters between events.
///
/// [`RefreshMode::Sharded`] is the production path: per-rack dirty lists, so
/// a scheduling round touches only racks and nodes whose tracker state
/// changed since the last round. [`RefreshMode::Full`] rebuilds every view
/// and recomputes every rack counter from scratch on each round — the naive
/// O(nodes) reference, kept so tests can assert the sharded bookkeeping
/// changes nothing but cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum RefreshMode {
    /// O(changed nodes) per round via per-rack dirty lists (default).
    #[default]
    Sharded,
    /// O(nodes) per round; reference implementation for equivalence tests.
    Full,
}

/// What happens to a node (or a whole rack) at a scripted fault time.
///
/// Beyond the clean crash/decommission/rejoin events, two *ambiguous* fault
/// families model what failure traces show dominates real clusters: network
/// partitions (the node is fine but unreachable — the master can only
/// suspect it, and on heal the node's locally completed work is reconciled
/// first-commit-wins) and gray failures (the node answers heartbeats but its
/// disk or network crawls, so nothing crashes and only stragglers betray it).
///
/// ```
/// use mrp_engine::{ClusterConfig, DetectorConfig, FaultEvent, FaultKind, NodeId};
/// use mrp_sim::SimTime;
///
/// let mut cfg = ClusterConfig::racked_cluster(2, 4, 2, 1);
/// cfg.detector = DetectorConfig::enabled();
/// // Cut node 3 off the network for a minute: it keeps executing, the
/// // detector tears it down after the heartbeat timeout, and the heal
/// // reconciles whatever it finished in the meantime.
/// cfg.faults.events.push(FaultEvent {
///     at: SimTime::from_secs(30),
///     kind: FaultKind::Partition { node: NodeId(3) },
/// });
/// cfg.faults.events.push(FaultEvent {
///     at: SimTime::from_secs(90),
///     kind: FaultKind::PartitionHeal { node: NodeId(3) },
/// });
/// // And give node 5 a sick disk: everything it runs stretches 3x.
/// cfg.faults.events.push(FaultEvent {
///     at: SimTime::from_secs(10),
///     kind: FaultKind::Gray { node: NodeId(5), slow_disk: 3.0, slow_net: 1.5 },
/// });
/// cfg.faults.events.push(FaultEvent {
///     at: SimTime::from_secs(300),
///     kind: FaultKind::GrayHeal { node: NodeId(5) },
/// });
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Abrupt node crash: every running attempt dies, every suspended
    /// attempt's swapped-out state is lost (the paper's key cost under
    /// failure), and the node's block replicas disappear (re-replicated from
    /// survivors where possible).
    Kill {
        /// The node that crashes.
        node: NodeId,
    },
    /// Administrative decommission: same task teardown as a crash, but the
    /// DFS drains the node's replicas gracefully (no block loss).
    Decommission {
        /// The node being decommissioned.
        node: NodeId,
    },
    /// A previously removed node returns to service with empty disks and a
    /// fresh TaskTracker.
    Rejoin {
        /// The node rejoining.
        node: NodeId,
    },
    /// Every node of the rack crashes at once (switch/PDU failure).
    RackOutage {
        /// The rack losing power.
        rack: RackId,
    },
    /// Every node of the rack returns to service.
    RackRejoin {
        /// The rack rejoining.
        rack: RackId,
    },
    /// The node is cut off from the network but keeps executing: its
    /// heartbeats stop, the failure detector (when enabled) suspects and
    /// tears it down after the timeout, and work it completes behind the
    /// partition is buffered for first-commit-wins reconciliation at heal.
    Partition {
        /// The node losing connectivity.
        node: NodeId,
    },
    /// The node's partition heals: it reconnects, and any attempts it
    /// finished while unreachable are committed unless a re-execution beat
    /// them to it (never double-committing a task).
    PartitionHeal {
        /// The node reconnecting.
        node: NodeId,
    },
    /// Every node of the rack is cut off at once (top-of-rack switch loss
    /// without power loss): the rack-scoped [`FaultKind::Partition`].
    RackPartition {
        /// The rack losing connectivity.
        rack: RackId,
    },
    /// Every node of the rack reconnects.
    RackPartitionHeal {
        /// The rack reconnecting.
        rack: RackId,
    },
    /// Gray failure: the node stays up and heartbeating, but its local disk
    /// and/or network degrade. Every attempt *launched* on it while degraded
    /// has its work/finalize phases stretched by `slow_disk` and its shuffle
    /// phase (and re-fetch backoff) by `slow_net` — no crash, only the
    /// straggler-speculation and reliability-predictor paths can react.
    Gray {
        /// The afflicted node.
        node: NodeId,
        /// Multiplier (>= 1) on disk-bound phase durations.
        slow_disk: f64,
        /// Multiplier (>= 1) on network-bound phase durations.
        slow_net: f64,
    },
    /// The node's gray failure clears; attempts launched afterwards run at
    /// full speed (already-running ones keep their stretched plans).
    GrayHeal {
        /// The recovering node.
        node: NodeId,
    },
}

/// One scripted fault-injection event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes (virtual time).
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Seeded random node churn: each rack draws failure times from an
/// exponential distribution with the given MTBF, kills a random member at
/// each strike, and (optionally) rejoins it after an exponential downtime.
/// All draws come from a dedicated seed, so fault timing is reproducible and
/// independent of the cluster's placement randomness.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RandomFaults {
    /// Mean time between failures *per rack*, in seconds.
    pub rack_mtbf_secs: f64,
    /// Mean downtime before a failed node rejoins, in seconds; `None` means
    /// failed nodes stay dead for the rest of the run.
    pub mean_recovery_secs: Option<f64>,
    /// No failures are generated after this virtual time.
    pub horizon: SimTime,
    /// Seed for the fault-time/victim draws.
    pub seed: u64,
}

/// The cluster's fault-injection plan: scripted events plus optional seeded
/// random churn. Empty by default — the failure-free cluster of the paper's
/// testbed.
///
/// ```
/// use mrp_engine::{ClusterConfig, FaultEvent, FaultKind, NodeId, RandomFaults};
/// use mrp_sim::SimTime;
///
/// let mut cfg = ClusterConfig::racked_cluster(2, 4, 2, 1);
/// // Kill node 3 at t=30s and bring it back a minute later...
/// cfg.faults.events.push(FaultEvent {
///     at: SimTime::from_secs(30),
///     kind: FaultKind::Kill { node: NodeId(3) },
/// });
/// cfg.faults.events.push(FaultEvent {
///     at: SimTime::from_secs(90),
///     kind: FaultKind::Rejoin { node: NodeId(3) },
/// });
/// // ...plus seeded random churn for the first ten minutes.
/// cfg.faults.random = Some(RandomFaults {
///     rack_mtbf_secs: 120.0,
///     mean_recovery_secs: Some(45.0),
///     horizon: SimTime::from_secs(600),
///     seed: 7,
/// });
/// assert!(cfg.validate().is_ok());
/// assert!(!cfg.faults.is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scripted kill/decommission/rejoin/rack-outage events.
    pub events: Vec<FaultEvent>,
    /// Seeded random per-rack MTBF churn, if any.
    pub random: Option<RandomFaults>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.random.is_none()
    }

    /// Validates the plan against the cluster shape it will be injected
    /// into, returning the first problem found.
    pub fn validate(&self, node_count: usize, racks: u32) -> Result<(), String> {
        let node_in_range = |n: NodeId| (n.0 as usize) < node_count;
        for ev in &self.events {
            match ev.kind {
                FaultKind::Kill { node }
                | FaultKind::Decommission { node }
                | FaultKind::Rejoin { node }
                | FaultKind::Partition { node }
                | FaultKind::PartitionHeal { node }
                | FaultKind::GrayHeal { node } => {
                    if !node_in_range(node) {
                        return Err(format!("fault event targets unknown node {node:?}"));
                    }
                }
                FaultKind::RackOutage { rack }
                | FaultKind::RackRejoin { rack }
                | FaultKind::RackPartition { rack }
                | FaultKind::RackPartitionHeal { rack } => {
                    if rack.0 >= racks {
                        return Err(format!("fault event targets unknown rack {rack:?}"));
                    }
                }
                FaultKind::Gray {
                    node,
                    slow_disk,
                    slow_net,
                } => {
                    if !node_in_range(node) {
                        return Err(format!("fault event targets unknown node {node:?}"));
                    }
                    // NaN and sub-unit multipliers must fail these checks.
                    if !(slow_disk >= 1.0 && slow_disk.is_finite()) {
                        return Err("gray-failure slow_disk must be finite and at least 1".into());
                    }
                    if !(slow_net >= 1.0 && slow_net.is_finite()) {
                        return Err("gray-failure slow_net must be finite and at least 1".into());
                    }
                }
            }
        }
        if let Some(rf) = &self.random {
            if rf.rack_mtbf_secs <= 0.0 || rf.rack_mtbf_secs.is_nan() {
                return Err("random-fault MTBF must be positive".into());
            }
            if let Some(rec) = rf.mean_recovery_secs {
                if rec <= 0.0 || rec.is_nan() {
                    return Err("random-fault mean recovery must be positive".into());
                }
            }
        }
        Ok(())
    }
}

/// Speculative re-execution (straggler mitigation) knobs.
///
/// When enabled, schedulers launch a backup attempt for a map task whose
/// progress rate has fallen below `slowness_ratio` times its job's mean rate
/// — including tasks frozen in `Suspended` (their rate decays while they
/// wait, which is exactly the re-execution opportunity preemption churn and
/// node failures create). The first attempt to finish wins; the engine kills
/// the loser.
///
/// ```
/// use mrp_engine::{ClusterConfig, SpeculationConfig};
///
/// let mut cfg = ClusterConfig::racked_cluster(2, 4, 2, 1);
/// cfg.speculation = SpeculationConfig::enabled();
/// assert!(cfg.validate().is_ok());
/// // Or tune the thresholds directly:
/// cfg.speculation.slowness_ratio = 0.25;
/// cfg.speculation.max_live_per_job = 1;
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// Master switch (default off: the paper's scenarios are speculation-free).
    pub enabled: bool,
    /// A task is a straggler when its progress rate is below this fraction of
    /// the job's mean progress rate.
    pub slowness_ratio: f64,
    /// Minimum time since a task's first launch before it may be speculated.
    pub min_runtime: SimDuration,
    /// Cap on concurrently live backup attempts per job (bounds slot waste).
    pub max_live_per_job: u32,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: false,
            slowness_ratio: 0.4,
            min_runtime: SimDuration::from_secs(30),
            max_live_per_job: 2,
        }
    }
}

impl SpeculationConfig {
    /// Speculation switched on with the default Hadoop-like thresholds.
    pub fn enabled() -> Self {
        SpeculationConfig {
            enabled: true,
            ..SpeculationConfig::default()
        }
    }

    /// Validates the knobs (no-op while the feature is off), returning the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if !(self.slowness_ratio > 0.0 && self.slowness_ratio <= 1.0) {
            return Err("speculation slowness ratio must be in (0, 1]".into());
        }
        if self.min_runtime.is_zero() {
            return Err("speculation min runtime must be positive".into());
        }
        Ok(())
    }
}

/// Delay-scheduling knobs: how long a job waits for a data-local slot
/// before accepting a worse placement (Zaharia et al., "Delay Scheduling",
/// EuroSys 2010), applied as a scheduler-independent placement policy.
///
/// The engine keeps one wait clock per job. The clock starts the first time
/// the job *declines* an offered slot because launching there would not be
/// node-local, escalates the job's allowed locality level with elapsed time
/// (node → rack after [`DelayConfig::node_local_wait`], rack → any after an
/// additional [`DelayConfig::rack_local_wait`]), and resets whenever the job
/// launches a node-local map task. Because escalation is purely a function
/// of virtual time, a job whose replica holders all died still drains — the
/// clock keeps running and the job eventually launches anywhere.
///
/// FIFO, FAIR and HFSP all enforce the policy through the shared
/// [`SchedulerContext`](crate::SchedulerContext) helpers; no per-scheduler
/// forks.
///
/// ```
/// use mrp_engine::{ClusterConfig, DelayConfig};
/// use mrp_sim::SimDuration;
///
/// // Wait one heartbeat interval for a node-local slot, one more for a
/// // rack-local one, then take anything.
/// let mut cfg = ClusterConfig::racked_cluster(4, 4, 2, 1);
/// cfg.delay = DelayConfig::waits(
///     cfg.heartbeat_interval,
///     cfg.heartbeat_interval,
/// );
/// assert!(cfg.validate().is_ok());
/// // Or express the thresholds in heartbeat intervals directly:
/// let same = ClusterConfig::racked_cluster(4, 4, 2, 1).with_delay_intervals(1.0, 1.0);
/// assert_eq!(cfg.delay, same.delay);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelayConfig {
    /// Master switch (default off: placement stays greedy, as in PR 2).
    pub enabled: bool,
    /// How long a job waits for a node-local slot before rack-local
    /// launches are allowed.
    pub node_local_wait: SimDuration,
    /// How much *additional* waiting (past `node_local_wait`) before
    /// off-rack launches are allowed. Zero collapses the rack tier: the job
    /// goes straight from node-local-only to anywhere.
    pub rack_local_wait: SimDuration,
}

impl Default for DelayConfig {
    fn default() -> Self {
        DelayConfig {
            enabled: false,
            node_local_wait: SimDuration::ZERO,
            rack_local_wait: SimDuration::ZERO,
        }
    }
}

impl DelayConfig {
    /// Delay scheduling enabled with explicit per-level wait durations.
    pub fn waits(node_local_wait: SimDuration, rack_local_wait: SimDuration) -> Self {
        DelayConfig {
            enabled: true,
            node_local_wait,
            rack_local_wait,
        }
    }

    /// Validates the knobs (no-op while the feature is off), returning the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.node_local_wait.is_zero() && self.rack_local_wait.is_zero() {
            return Err("delay scheduling needs a positive wait at some locality level".into());
        }
        Ok(())
    }
}

/// Fault-tolerant shuffle knobs: map outputs as node-local artifacts that die
/// with their node, reduce-side fetch retry with exponential backoff, and a
/// cross-rack bandwidth contention term in the shuffle phase.
///
/// With the master switch on, the engine tracks which node holds each
/// committed map output (per-job registry). A node crash destroys the
/// outputs it held: completed maps of jobs with unfinished reduces go back
/// to `Pending` for re-execution — Hadoop's real behaviour — while reduces
/// stalled in their shuffle phase retry the fetch with exponential backoff
/// instead of failing the job. A graceful decommission migrates the outputs
/// to a surviving node instead (no re-execution), mirroring the
/// graceful-vs-crash block distinction in `mrp_dfs::NameNode::re_replicate`.
///
/// `cross_rack_penalty` adds the topology term: a reduce launched on a rack
/// holding little of its job's map-output bytes pays up to
/// `cross_rack_penalty` times the base shuffle duration, which is what makes
/// rack-aware reduce placement worth anything.
///
/// ```
/// use mrp_engine::{ClusterConfig, ShuffleConfig};
/// use mrp_sim::SimDuration;
///
/// let mut cfg = ClusterConfig::racked_cluster(2, 4, 2, 1);
/// cfg.shuffle = ShuffleConfig::fault_tolerant();
/// assert!(cfg.validate().is_ok());
/// // Or tune the retry/backoff schedule directly:
/// cfg.shuffle.fetch_retry_base = SimDuration::from_secs(1);
/// cfg.shuffle.fetch_retry_backoff = 2.0;
/// cfg.shuffle.fetch_retry_cap = SimDuration::from_secs(20);
/// cfg.shuffle.cross_rack_penalty = 2.5;
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShuffleConfig {
    /// Master switch (default off: map outputs survive node loss silently,
    /// as in the PR 3 fault model, and shuffle duration stays topology-blind).
    pub enabled: bool,
    /// First re-fetch delay after a reduce finds map outputs missing at the
    /// end of its shuffle phase.
    pub fetch_retry_base: SimDuration,
    /// Multiplier applied to the delay on every further failed fetch round
    /// (exponential backoff).
    pub fetch_retry_backoff: f64,
    /// Upper bound on the per-round re-fetch delay.
    pub fetch_retry_cap: SimDuration,
    /// Shuffle-duration multiplier paid when *all* of a job's map-output
    /// bytes live off the reduce's rack; the effective factor scales linearly
    /// with the off-rack byte fraction. `1.0` disables the contention term.
    pub cross_rack_penalty: f64,
}

impl Default for ShuffleConfig {
    fn default() -> Self {
        ShuffleConfig {
            enabled: false,
            fetch_retry_base: SimDuration::from_secs(2),
            fetch_retry_backoff: 2.0,
            fetch_retry_cap: SimDuration::from_secs(30),
            cross_rack_penalty: 1.0,
        }
    }
}

impl ShuffleConfig {
    /// Fault-tolerant shuffle switched on with Hadoop-like retry defaults
    /// and a 2x worst-case cross-rack contention term.
    pub fn fault_tolerant() -> Self {
        ShuffleConfig {
            enabled: true,
            cross_rack_penalty: 2.0,
            ..ShuffleConfig::default()
        }
    }

    /// Validates the knobs (no-op while the feature is off), returning the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.fetch_retry_base.is_zero() {
            return Err("shuffle fetch retry base must be positive".into());
        }
        // NaN must fail these range checks too.
        if self.fetch_retry_backoff < 1.0 || self.fetch_retry_backoff.is_nan() {
            return Err("shuffle fetch retry backoff must be at least 1".into());
        }
        if self.fetch_retry_cap < self.fetch_retry_base {
            return Err("shuffle fetch retry cap must be at least the base delay".into());
        }
        if self.cross_rack_penalty < 1.0 || self.cross_rack_penalty.is_nan() {
            return Err("shuffle cross-rack penalty must be at least 1".into());
        }
        Ok(())
    }
}

/// ATLAS-style node-reliability predictor knobs (Soualhia et al.: feed
/// failure history back into placement). The engine maintains an EWMA-like
/// flakiness score per node and per rack, bumped on every crash and decaying
/// exponentially with virtual time since the last one; schedulers consult it
/// through [`SchedulerContext::reliability_avoid`](crate::SchedulerContext)
/// to keep fresh launches and speculative backups off recently-flaky nodes
/// whenever the cluster has capacity elsewhere (the guard that keeps the
/// bias starvation-free).
///
/// ```
/// use mrp_engine::{ClusterConfig, ReliabilityConfig};
///
/// let mut cfg = ClusterConfig::racked_cluster(2, 4, 2, 1);
/// cfg.reliability = ReliabilityConfig::predictive();
/// assert!(cfg.validate().is_ok());
/// // Or tune the predictor directly:
/// cfg.reliability.failure_boost = 0.6;
/// cfg.reliability.half_life_secs = 180.0;
/// cfg.reliability.flaky_threshold = 0.4;
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Master switch (default off: placement ignores failure history).
    pub enabled: bool,
    /// How far one crash moves the node's score towards 1.0 (the EWMA
    /// weight of a new failure observation), in `(0, 1]`.
    pub failure_boost: f64,
    /// Half-life of the score's exponential decay, in seconds of virtual
    /// time since the node's last failure: a node that stays up is forgiven.
    pub half_life_secs: f64,
    /// Weight of the node's rack score in the combined flakiness estimate
    /// (rack-level churn — a sick switch — taints all members).
    pub rack_weight: f64,
    /// Combined score at or above which a node is considered flaky and
    /// avoided for fresh launches and speculative backups.
    pub flaky_threshold: f64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            enabled: false,
            failure_boost: 0.5,
            half_life_secs: 300.0,
            rack_weight: 0.25,
            flaky_threshold: 0.35,
        }
    }
}

impl ReliabilityConfig {
    /// The predictor switched on with the default EWMA/decay parameters.
    pub fn predictive() -> Self {
        ReliabilityConfig {
            enabled: true,
            ..ReliabilityConfig::default()
        }
    }

    /// Validates the knobs (no-op while the feature is off), returning the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if !(self.failure_boost > 0.0 && self.failure_boost <= 1.0) {
            return Err("reliability failure boost must be in (0, 1]".into());
        }
        if self.half_life_secs <= 0.0 || self.half_life_secs.is_nan() {
            return Err("reliability half-life must be positive".into());
        }
        if self.rack_weight < 0.0 || self.rack_weight.is_nan() {
            return Err("reliability rack weight must be non-negative".into());
        }
        if self.flaky_threshold <= 0.0 || self.flaky_threshold.is_nan() {
            return Err("reliability flaky threshold must be positive".into());
        }
        Ok(())
    }
}

/// Suspicion-based failure-detection knobs: how long the master waits
/// before believing a silent node is dead.
///
/// Default-off the master is omniscient, as in PR 3: a fault event and the
/// scheduler's knowledge of it are simultaneous. With the detector enabled,
/// a killed or partitioned node merely goes *silent*: its slots stay
/// occupied in every scheduler view, nothing is re-executed, and only after
/// [`DetectorConfig::missed_heartbeats`] heartbeat intervals without a sign
/// of life (measured from the node's last delivered heartbeat, plus an
/// optional [`DetectorConfig::confirmation_grace`] second look) does the
/// teardown — attempt loss, map-output loss, block re-replication, the
/// reliability penalty — actually run. Detection lag is recorded in
/// [`FaultStats`](crate::metrics::FaultStats), because the window between
/// fault and suspicion is exactly when suspended-to-disk state is silently
/// at risk.
///
/// ```
/// use mrp_engine::{ClusterConfig, DetectorConfig};
/// use mrp_sim::SimDuration;
///
/// let mut cfg = ClusterConfig::racked_cluster(2, 4, 2, 1);
/// cfg.detector = DetectorConfig::enabled();
/// assert!(cfg.validate().is_ok());
/// // Or tune the suspicion threshold directly: suspect after 5 missed
/// // heartbeats, then confirm 2 seconds later.
/// cfg.detector.missed_heartbeats = 5;
/// cfg.detector.confirmation_grace = SimDuration::from_secs(2);
/// assert!(cfg.validate().is_ok());
/// // The worst-case observation lag is the timeout plus the grace period.
/// assert_eq!(
///     cfg.detector.timeout(cfg.heartbeat_interval),
///     SimDuration::from_secs(17),
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Master switch (default off: faults are observed instantaneously).
    pub enabled: bool,
    /// Heartbeat intervals without a heartbeat before a node is suspected
    /// (must be at least 1 while enabled).
    pub missed_heartbeats: u32,
    /// Extra wait between suspicion and confirmed teardown (a second-look
    /// grace period; zero confirms immediately on suspicion).
    pub confirmation_grace: SimDuration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            enabled: false,
            missed_heartbeats: 3,
            confirmation_grace: SimDuration::ZERO,
        }
    }
}

impl DetectorConfig {
    /// The detector switched on with the default Hadoop-like threshold
    /// (3 missed heartbeats, no confirmation grace).
    pub fn enabled() -> Self {
        DetectorConfig {
            enabled: true,
            ..DetectorConfig::default()
        }
    }

    /// The full suspicion-to-teardown timeout for a given heartbeat
    /// interval: `missed_heartbeats * interval + confirmation_grace`.
    pub fn timeout(&self, heartbeat_interval: SimDuration) -> SimDuration {
        heartbeat_interval.mul_f64(f64::from(self.missed_heartbeats)) + self.confirmation_grace
    }

    /// Validates the knobs (no-op while the feature is off), returning the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.missed_heartbeats == 0 {
            return Err("failure detector must wait for at least one missed heartbeat".into());
        }
        Ok(())
    }
}

/// Observability knobs: the in-cluster metrics registry, virtual-time
/// series sampler, event-loop profiler and span trace.
///
/// Default-off the cluster allocates no observability state at all and every
/// hot path skips recording behind a single `Option` check, so pinned
/// determinism tests and bench baselines are untouched. Crucially the layer
/// is *passive* even when on: the sampler piggybacks on event-loop
/// iterations instead of scheduling events of its own, and the profiler only
/// reads the wall clock — an observed run produces byte-identical reports
/// and event counts to an unobserved one (pinned by the observability test
/// suite).
///
/// ```
/// use mrp_engine::{ClusterConfig, ObsConfig};
///
/// let cfg = ClusterConfig::small_cluster(4, 2, 1).with_obs(ObsConfig::full());
/// assert!(cfg.validate().is_ok());
/// assert!(cfg.obs.series && cfg.obs.spans && cfg.obs.profile);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch (default off: zero observability state, zero overhead).
    pub enabled: bool,
    /// Sample the time-series columns (pending tasks, free slots, suspended
    /// bytes, swap backlog, suspicions, ...) every `sample_interval`.
    pub series: bool,
    /// Record spans (task attempts, suspend cycles, shuffle stalls,
    /// partition windows) for Chrome-trace export.
    pub spans: bool,
    /// Profile the event loop per event kind and scheduler action.
    pub profile: bool,
    /// Virtual-time cadence of the series sampler (must be non-zero while
    /// `series` is on).
    pub sample_interval: SimDuration,
    /// Hard cap on recorded spans; once reached, new spans are dropped (and
    /// counted) rather than growing without bound on week-long runs.
    pub max_spans: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            series: true,
            spans: true,
            profile: true,
            sample_interval: SimDuration::from_secs(10),
            max_spans: 1 << 20,
        }
    }
}

impl ObsConfig {
    /// Everything on: series sampling (10 s cadence), spans and the
    /// event-loop profiler.
    pub fn full() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    /// Only the event-loop profiler — what throughput benches enable, since
    /// it allocates nothing per event.
    pub fn profile_only() -> Self {
        ObsConfig {
            enabled: true,
            series: false,
            spans: false,
            profile: true,
            ..ObsConfig::default()
        }
    }

    /// Validates the knobs (no-op while the feature is off), returning the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.series && self.sample_interval.is_zero() {
            return Err("observability sample interval must be non-zero".into());
        }
        if self.spans && self.max_spans == 0 {
            return Err("observability span cap must be at least 1".into());
        }
        Ok(())
    }
}

/// Whole-cluster configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Per-node configurations; node ids are assigned in order starting at 0.
    pub nodes: Vec<NodeConfig>,
    /// Number of racks the nodes are split over (contiguous blocks of nearly
    /// equal size, rack 0 first). `1` reproduces the paper's single-rack
    /// setup; the `swim_cluster` bench runs 100 racks x 100 nodes.
    pub racks: u32,
    /// View/counter refresh strategy (see [`RefreshMode`]).
    pub refresh_mode: RefreshMode,
    /// TaskTracker heartbeat interval (`mapreduce.jobtracker.heartbeat.interval`).
    pub heartbeat_interval: SimDuration,
    /// Whether TaskTrackers send an immediate out-of-band heartbeat when a
    /// task finishes, is suspended, or is killed
    /// (`mapreduce.tasktracker.outofband.heartbeat`).
    pub out_of_band_heartbeats: bool,
    /// HDFS block size used when the harness creates input files.
    pub dfs_block_size: u64,
    /// HDFS replication factor for created files.
    pub dfs_replication: u32,
    /// Task execution defaults.
    pub task: TaskDefaults,
    /// Seed for all randomised decisions (placement, tie-breaking).
    pub seed: u64,
    /// Schedule-trace verbosity (default [`TraceLevel::Schedule`]; set to
    /// [`TraceLevel::Off`] for throughput runs).
    pub trace_level: TraceLevel,
    /// Fault-injection plan (default: no faults).
    pub faults: FaultPlan,
    /// Speculative re-execution knobs (default: off).
    pub speculation: SpeculationConfig,
    /// Delay-scheduling knobs for data-local placement (default: off).
    pub delay: DelayConfig,
    /// Fault-tolerant shuffle knobs (default: off).
    pub shuffle: ShuffleConfig,
    /// Node-reliability predictor knobs (default: off).
    pub reliability: ReliabilityConfig,
    /// Suspicion-based failure-detection knobs (default: off — faults are
    /// observed the instant they strike).
    pub detector: DetectorConfig,
    /// Observability knobs — metrics registry, series sampler, event-loop
    /// profiler, span trace (default: off).
    #[serde(default)]
    pub obs: ObsConfig,
}

impl ClusterConfig {
    /// The paper's experimental setup: one node, one map slot, 512 MB blocks.
    ///
    /// ```
    /// use mrp_engine::{Cluster, ClusterConfig, FifoScheduler, JobSpec};
    /// use mrp_sim::{SimTime, MIB};
    ///
    /// let mut cluster = Cluster::new(ClusterConfig::paper_single_node(),
    ///                                Box::new(FifoScheduler::new()));
    /// cluster.create_input_file("/input", 512 * MIB).unwrap();
    /// cluster.submit_job(JobSpec::map_only("tl", "/input"));
    /// cluster.run(SimTime::from_secs(3_600));
    /// assert!(cluster.report().all_jobs_complete());
    /// ```
    pub fn paper_single_node() -> Self {
        ClusterConfig {
            nodes: vec![NodeConfig::paper_node()],
            racks: 1,
            refresh_mode: RefreshMode::Sharded,
            heartbeat_interval: SimDuration::from_secs(3),
            out_of_band_heartbeats: true,
            dfs_block_size: 512 * MIB,
            dfs_replication: 1,
            task: TaskDefaults::default(),
            seed: 1,
            trace_level: TraceLevel::Schedule,
            faults: FaultPlan::default(),
            speculation: SpeculationConfig::default(),
            delay: DelayConfig::default(),
            shuffle: ShuffleConfig::default(),
            reliability: ReliabilityConfig::default(),
            detector: DetectorConfig::default(),
            obs: ObsConfig::default(),
        }
    }

    /// A small multi-node cluster for the scheduler examples and the
    /// resume-locality experiments.
    pub fn small_cluster(nodes: u32, map_slots: u32, reduce_slots: u32) -> Self {
        ClusterConfig {
            nodes: (0..nodes)
                .map(|_| NodeConfig {
                    os: NodeOsConfig::default(),
                    map_slots,
                    reduce_slots,
                })
                .collect(),
            racks: 1,
            refresh_mode: RefreshMode::Sharded,
            heartbeat_interval: SimDuration::from_secs(3),
            out_of_band_heartbeats: true,
            dfs_block_size: 128 * MIB,
            dfs_replication: 3.min(nodes),
            task: TaskDefaults::default(),
            seed: 1,
            trace_level: TraceLevel::Schedule,
            faults: FaultPlan::default(),
            speculation: SpeculationConfig::default(),
            delay: DelayConfig::default(),
            shuffle: ShuffleConfig::default(),
            reliability: ReliabilityConfig::default(),
            detector: DetectorConfig::default(),
            obs: ObsConfig::default(),
        }
    }

    /// A multi-rack cluster: `racks` racks of `nodes_per_rack` nodes each.
    /// Replica placement, task-input locality and scheduler assignment all
    /// become rack-aware; throughput-sensitive callers still switch
    /// `trace_level` off themselves.
    ///
    /// ```
    /// use mrp_engine::ClusterConfig;
    ///
    /// let cfg = ClusterConfig::racked_cluster(4, 25, 2, 1);
    /// assert_eq!(cfg.node_count(), 100);
    /// assert_eq!(cfg.racks, 4);
    /// assert!(cfg.validate().is_ok());
    /// ```
    pub fn racked_cluster(
        racks: u32,
        nodes_per_rack: u32,
        map_slots: u32,
        reduce_slots: u32,
    ) -> Self {
        let mut cfg = ClusterConfig::small_cluster(racks * nodes_per_rack, map_slots, reduce_slots);
        cfg.racks = racks;
        cfg
    }

    /// Enables delay scheduling with per-level wait thresholds expressed in
    /// heartbeat intervals, builder style. `with_delay_intervals(1.0, 1.0)`
    /// waits one heartbeat interval for a node-local slot and one more for a
    /// rack-local one — the sweet spot the `locality_delay` bench records.
    pub fn with_delay_intervals(mut self, node_local: f64, rack_local: f64) -> Self {
        self.delay = DelayConfig::waits(
            self.heartbeat_interval.mul_f64(node_local),
            self.heartbeat_interval.mul_f64(rack_local),
        );
        self
    }

    /// Replaces the speculative-execution knobs, builder style.
    ///
    /// ```
    /// use mrp_engine::{ClusterConfig, SpeculationConfig};
    ///
    /// let cfg = ClusterConfig::racked_cluster(2, 4, 2, 1)
    ///     .with_speculation(SpeculationConfig::enabled());
    /// assert!(cfg.validate().is_ok());
    /// ```
    pub fn with_speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.speculation = speculation;
        self
    }

    /// Replaces the delay-scheduling knobs, builder style (see also
    /// [`ClusterConfig::with_delay_intervals`] for heartbeat-relative waits).
    pub fn with_delay(mut self, delay: DelayConfig) -> Self {
        self.delay = delay;
        self
    }

    /// Replaces the fault-tolerant-shuffle knobs, builder style.
    pub fn with_shuffle(mut self, shuffle: ShuffleConfig) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Replaces the node-reliability-predictor knobs, builder style.
    pub fn with_reliability(mut self, reliability: ReliabilityConfig) -> Self {
        self.reliability = reliability;
        self
    }

    /// Replaces the failure-detector knobs, builder style.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Replaces the fault-injection plan, builder style.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the observability knobs, builder style.
    ///
    /// ```
    /// use mrp_engine::{ClusterConfig, ObsConfig};
    ///
    /// let cfg = ClusterConfig::small_cluster(4, 2, 1).with_obs(ObsConfig::full());
    /// assert!(cfg.obs.enabled);
    /// ```
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Switches every node to the given block-granular swap-device model,
    /// builder style (see [`mrp_simos::SwapConfig`]). Default-off: without
    /// this call the legacy byte-granular swap accounting is used.
    ///
    /// ```
    /// use mrp_engine::ClusterConfig;
    /// use mrp_simos::SwapConfig;
    ///
    /// let cfg = ClusterConfig::small_cluster(4, 2, 1).with_swap(SwapConfig::lazy());
    /// assert!(cfg.validate().is_ok());
    /// assert!(cfg.nodes[0].os.memory.swap.lazy_resume);
    /// ```
    pub fn with_swap(mut self, swap: mrp_simos::SwapConfig) -> Self {
        for node in &mut self.nodes {
            node.os.memory.swap = swap;
        }
        self
    }

    /// Sets every node's disk `background_share` — how much spindle
    /// bandwidth queued DFS re-replication steals from swap I/O after a
    /// node failure. `0.0` (the default) disables the contention model.
    pub fn with_disk_background_share(mut self, share: f64) -> Self {
        for node in &mut self.nodes {
            node.os.disk.background_share = share;
        }
        self
    }

    /// Sets the simulation seed, builder style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the schedule-trace verbosity, builder style (throughput-sensitive
    /// runs pass [`TraceLevel::Off`]).
    pub fn with_trace_level(mut self, trace_level: TraceLevel) -> Self {
        self.trace_level = trace_level;
        self
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validates the configuration, returning a description of the first
    /// problem found. Cluster-shape checks live here; each feature
    /// sub-config validates its own knobs ([`FaultPlan::validate`],
    /// [`SpeculationConfig::validate`], [`DelayConfig::validate`],
    /// [`ShuffleConfig::validate`], [`ReliabilityConfig::validate`],
    /// [`DetectorConfig::validate`], [`ObsConfig::validate`]) and is invoked
    /// from this single entry point.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("cluster must have at least one node".into());
        }
        if self.racks == 0 {
            return Err("cluster must have at least one rack".into());
        }
        if self.racks as usize > self.nodes.len() {
            return Err(format!(
                "more racks ({}) than nodes ({})",
                self.racks,
                self.nodes.len()
            ));
        }
        if self.heartbeat_interval.is_zero() {
            return Err("heartbeat interval must be positive".into());
        }
        if self.dfs_block_size == 0 {
            return Err("block size must be positive".into());
        }
        if self.dfs_replication == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.task.parse_rate_bytes_per_sec <= 0.0 {
            return Err("parse rate must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.task.base_memory_dirty_fraction) {
            return Err("dirty fraction must be in [0, 1]".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.map_slots == 0 && n.reduce_slots == 0 {
                return Err(format!("node {i} has no task slots"));
            }
        }
        self.faults.validate(self.nodes.len(), self.racks)?;
        self.speculation.validate()?;
        self.delay.validate()?;
        self.shuffle.validate()?;
        self.reliability.validate()?;
        self.detector.validate()?;
        self.obs.validate()?;
        for (i, n) in self.nodes.iter().enumerate() {
            n.os.memory
                .swap
                .validate()
                .map_err(|e| format!("node {i}: {e}"))?;
            let share = n.os.disk.background_share;
            if !(0.0..1.0).contains(&share) {
                return Err(format!("node {i}: disk background_share must be in [0, 1)"));
            }
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper_single_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_is_valid() {
        let c = ClusterConfig::paper_single_node();
        assert!(c.validate().is_ok());
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.nodes[0].map_slots, 1);
        assert_eq!(c.dfs_block_size, 512 * MIB);
    }

    #[test]
    fn small_cluster_shape() {
        let c = ClusterConfig::small_cluster(5, 2, 1);
        assert!(c.validate().is_ok());
        assert_eq!(c.node_count(), 5);
        assert_eq!(c.dfs_replication, 3);
        let c1 = ClusterConfig::small_cluster(2, 2, 1);
        assert_eq!(c1.dfs_replication, 2);
    }

    #[test]
    fn paper_task_duration_is_about_80_seconds() {
        let t = TaskDefaults::default();
        let work = 512.0 * MIB as f64 / t.parse_rate_bytes_per_sec;
        let total = t.jvm_startup.as_secs_f64() + work + t.commit_overhead.as_secs_f64();
        assert!(
            (75.0..95.0).contains(&total),
            "paper tasks should take ~80s, got {total}"
        );
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = ClusterConfig::paper_single_node();
        c.nodes.clear();
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_single_node();
        c.heartbeat_interval = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_single_node();
        c.dfs_block_size = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_single_node();
        c.dfs_replication = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_single_node();
        c.task.parse_rate_bytes_per_sec = 0.0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_single_node();
        c.task.base_memory_dirty_fraction = 1.5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_single_node();
        c.nodes[0].map_slots = 0;
        c.nodes[0].reduce_slots = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_single_node();
        c.racks = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_single_node();
        c.racks = 2;
        assert!(c.validate().is_err(), "more racks than nodes is invalid");
    }

    #[test]
    fn fault_and_speculation_validation() {
        let mut c = ClusterConfig::racked_cluster(2, 2, 1, 1);
        c.faults.events.push(FaultEvent {
            at: SimTime::from_secs(10),
            kind: FaultKind::Kill { node: NodeId(3) },
        });
        c.faults.random = Some(RandomFaults {
            rack_mtbf_secs: 600.0,
            mean_recovery_secs: Some(60.0),
            horizon: SimTime::from_secs(3_600),
            seed: 7,
        });
        c.speculation = SpeculationConfig::enabled();
        assert!(c.validate().is_ok());

        let mut bad = c.clone();
        bad.faults.events[0].kind = FaultKind::Kill { node: NodeId(99) };
        assert!(bad.validate().is_err(), "out-of-range node");

        let mut bad = c.clone();
        bad.faults.events[0].kind = FaultKind::RackOutage { rack: RackId(5) };
        assert!(bad.validate().is_err(), "out-of-range rack");

        let mut bad = c.clone();
        bad.faults.random.as_mut().unwrap().rack_mtbf_secs = 0.0;
        assert!(bad.validate().is_err(), "zero MTBF");

        let mut bad = c.clone();
        bad.speculation.slowness_ratio = 1.5;
        assert!(bad.validate().is_err(), "slowness ratio out of range");

        assert!(ClusterConfig::paper_single_node().faults.is_empty());
    }

    #[test]
    fn delay_config_builder_and_validation() {
        let cfg = ClusterConfig::racked_cluster(2, 2, 1, 1).with_delay_intervals(1.0, 2.0);
        assert!(cfg.delay.enabled);
        assert_eq!(cfg.delay.node_local_wait, cfg.heartbeat_interval);
        assert_eq!(
            cfg.delay.rack_local_wait,
            cfg.heartbeat_interval.mul_f64(2.0)
        );
        assert!(cfg.validate().is_ok());

        // Zero waits at every level make an enabled delay meaningless.
        let mut bad = ClusterConfig::paper_single_node();
        bad.delay = DelayConfig {
            enabled: true,
            node_local_wait: SimDuration::ZERO,
            rack_local_wait: SimDuration::ZERO,
        };
        assert!(bad.validate().is_err());

        // Disabled delay with zero waits is the default and fine.
        assert!(!ClusterConfig::paper_single_node().delay.enabled);
        assert!(ClusterConfig::paper_single_node().validate().is_ok());
    }

    #[test]
    fn shuffle_and_reliability_validation() {
        let mut c = ClusterConfig::racked_cluster(2, 2, 1, 1);
        c.shuffle = ShuffleConfig::fault_tolerant();
        c.reliability = ReliabilityConfig::predictive();
        assert!(c.validate().is_ok());

        let mut bad = c.clone();
        bad.shuffle.fetch_retry_base = SimDuration::ZERO;
        assert!(bad.validate().is_err(), "zero retry base");

        let mut bad = c.clone();
        bad.shuffle.fetch_retry_backoff = 0.5;
        assert!(bad.validate().is_err(), "sub-unit backoff");

        let mut bad = c.clone();
        bad.shuffle.fetch_retry_cap = SimDuration::from_millis(1);
        assert!(bad.validate().is_err(), "cap below base");

        let mut bad = c.clone();
        bad.shuffle.cross_rack_penalty = 0.9;
        assert!(bad.validate().is_err(), "penalty below 1");

        let mut bad = c.clone();
        bad.reliability.failure_boost = 0.0;
        assert!(bad.validate().is_err(), "zero failure boost");

        let mut bad = c.clone();
        bad.reliability.half_life_secs = 0.0;
        assert!(bad.validate().is_err(), "zero half-life");

        let mut bad = c.clone();
        bad.reliability.flaky_threshold = 0.0;
        assert!(bad.validate().is_err(), "zero flaky threshold");

        // Both off by default: invalid knobs are ignored while disabled.
        let mut off = ClusterConfig::paper_single_node();
        off.shuffle.cross_rack_penalty = 0.0;
        off.reliability.half_life_secs = 0.0;
        assert!(off.validate().is_ok());
    }

    #[test]
    fn detector_partition_and_gray_validation() {
        let mut c = ClusterConfig::racked_cluster(2, 2, 1, 1);
        c.detector = DetectorConfig::enabled();
        c.faults.events.push(FaultEvent {
            at: SimTime::from_secs(10),
            kind: FaultKind::Partition { node: NodeId(1) },
        });
        c.faults.events.push(FaultEvent {
            at: SimTime::from_secs(40),
            kind: FaultKind::PartitionHeal { node: NodeId(1) },
        });
        c.faults.events.push(FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::RackPartition { rack: RackId(1) },
        });
        c.faults.events.push(FaultEvent {
            at: SimTime::from_secs(25),
            kind: FaultKind::RackPartitionHeal { rack: RackId(1) },
        });
        c.faults.events.push(FaultEvent {
            at: SimTime::from_secs(15),
            kind: FaultKind::Gray {
                node: NodeId(2),
                slow_disk: 2.0,
                slow_net: 1.5,
            },
        });
        c.faults.events.push(FaultEvent {
            at: SimTime::from_secs(60),
            kind: FaultKind::GrayHeal { node: NodeId(2) },
        });
        assert!(c.validate().is_ok());

        let mut bad = c.clone();
        bad.faults.events[0].kind = FaultKind::Partition { node: NodeId(9) };
        assert!(bad.validate().is_err(), "out-of-range partition node");

        let mut bad = c.clone();
        bad.faults.events[2].kind = FaultKind::RackPartition { rack: RackId(7) };
        assert!(bad.validate().is_err(), "out-of-range partition rack");

        let mut bad = c.clone();
        bad.faults.events[4].kind = FaultKind::Gray {
            node: NodeId(2),
            slow_disk: 0.5,
            slow_net: 1.0,
        };
        assert!(bad.validate().is_err(), "sub-unit slow_disk");

        let mut bad = c.clone();
        bad.faults.events[4].kind = FaultKind::Gray {
            node: NodeId(2),
            slow_disk: 1.0,
            slow_net: f64::NAN,
        };
        assert!(bad.validate().is_err(), "NaN slow_net");

        let mut bad = c.clone();
        bad.detector.missed_heartbeats = 0;
        assert!(bad.validate().is_err(), "zero-heartbeat suspicion window");

        // Off by default: invalid knobs are ignored while disabled.
        let mut off = ClusterConfig::paper_single_node();
        off.detector.missed_heartbeats = 0;
        assert!(!off.detector.enabled);
        assert!(off.validate().is_ok());
    }

    #[test]
    fn detector_timeout_combines_threshold_and_grace() {
        let mut d = DetectorConfig::enabled();
        assert_eq!(
            d.timeout(SimDuration::from_secs(3)),
            SimDuration::from_secs(9)
        );
        d.confirmation_grace = SimDuration::from_secs(2);
        assert_eq!(
            d.timeout(SimDuration::from_secs(3)),
            SimDuration::from_secs(11)
        );
    }

    #[test]
    fn racked_cluster_shape() {
        let c = ClusterConfig::racked_cluster(4, 3, 2, 1);
        assert!(c.validate().is_ok());
        assert_eq!(c.node_count(), 12);
        assert_eq!(c.racks, 4);
        assert_eq!(c.refresh_mode, RefreshMode::Sharded);
        assert_eq!(c.dfs_replication, 3);
    }
}
