//! Experiment-facing metrics and the end-of-run report.
//!
//! The paper's two performance metrics (Section IV-B) are:
//!
//! * **sojourn time** of the high-priority job `th` — submission to
//!   completion;
//! * **makespan** of the whole workload — first submission to last
//!   completion.
//!
//! plus, for the overhead analysis of Figure 4, the number of bytes paged
//! out for the preempted task's process.

use crate::job::{JobId, JobRuntime, TaskId};
use mrp_dfs::NodeId;
use mrp_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Per-task outcome of a simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskReport {
    /// The task.
    pub id: TaskId,
    /// Final reported progress (1.0 when successful).
    pub progress: f64,
    /// Number of attempts that were created.
    pub attempts: u32,
    /// Number of suspend/resume cycles.
    pub suspend_cycles: u32,
    /// Work thrown away because attempts were killed, in seconds.
    pub wasted_work_secs: f64,
    /// Cumulative bytes of this task's memory paged out to swap.
    pub paged_out_bytes: u64,
    /// Cumulative bytes paged back in from swap.
    pub paged_in_bytes: u64,
    /// When the first attempt launched.
    pub first_launched_at: Option<SimTime>,
    /// When the task succeeded.
    pub finished_at: Option<SimTime>,
}

/// Per-job outcome of a simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The job.
    pub id: JobId,
    /// The job's name (e.g. `th`, `tl`).
    pub name: String,
    /// Its priority.
    pub priority: i32,
    /// Tenant the job was charged to (mirrors [`crate::JobSpec::tenant`]).
    #[serde(default)]
    pub tenant: u32,
    /// Whether the job ran best-effort (mirrors
    /// [`crate::JobSpec::best_effort`]).
    #[serde(default)]
    pub best_effort: bool,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time, if the job finished.
    pub completed_at: Option<SimTime>,
    /// Sojourn time in seconds, if the job finished.
    pub sojourn_secs: Option<f64>,
    /// Per-task details.
    pub tasks: Vec<TaskReport>,
}

impl JobReport {
    /// Builds a report from the JobTracker's bookkeeping.
    pub fn from_runtime(job: &JobRuntime) -> Self {
        JobReport {
            id: job.id,
            name: job.spec.name.clone(),
            priority: job.spec.priority,
            tenant: job.spec.tenant,
            best_effort: job.spec.best_effort,
            submitted_at: job.submitted_at,
            completed_at: job.completed_at,
            sojourn_secs: job.sojourn().map(|d| d.as_secs_f64()),
            tasks: job
                .tasks
                .iter()
                .map(|t| TaskReport {
                    id: t.id,
                    progress: t.progress,
                    attempts: t.attempts_made,
                    suspend_cycles: t.suspend_cycles,
                    wasted_work_secs: t.wasted_work.as_secs_f64(),
                    paged_out_bytes: t.paged_out_bytes,
                    paged_in_bytes: t.paged_in_bytes,
                    first_launched_at: t.first_launched_at,
                    finished_at: t.finished_at,
                })
                .collect(),
        }
    }

    /// Total paged-out bytes across the job's tasks.
    pub fn paged_out_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.paged_out_bytes).sum()
    }

    /// Total wasted work across the job's tasks, in seconds.
    pub fn wasted_work_secs(&self) -> f64 {
        self.tasks.iter().map(|t| t.wasted_work_secs).sum()
    }
}

/// Upper bounds (in seconds) of the delay-scheduling wait-time histogram
/// buckets; the last bucket is open-ended.
pub const DELAY_WAIT_BUCKET_SECS: [f64; 5] = [1.0, 3.0, 10.0, 30.0, 100.0];

/// Map-task launch counts bucketed by input locality (the scheduling analogue
/// of HDFS read locality). Maintained by the engine at every successful map
/// launch, so benches and figures can assert on rack-aware placement quality
/// without replaying the trace.
///
/// When delay scheduling ([`crate::DelayConfig`]) is enabled the struct also
/// carries its cost side: how many launch opportunities jobs declined while
/// waiting for locality, and a histogram of how long the waits that ended in
/// a node-local launch lasted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalityStats {
    /// Launches where the node held a replica of the task's input (tasks
    /// with no placement preference at all, e.g. synthetic input, count here:
    /// every node is equally good for them).
    pub node_local: u64,
    /// Launches on a different node in a replica-holding rack.
    pub rack_local: u64,
    /// Launches with every replica in a foreign rack.
    pub off_rack: u64,
    /// Launch opportunities jobs declined under delay scheduling (a free
    /// slot of the right kind the job skipped waiting for a better-placed
    /// one). Zero when delay scheduling is off.
    pub delayed_skips: u64,
    /// Histogram of delay waits that ended in a node-local launch, bucketed
    /// by [`DELAY_WAIT_BUCKET_SECS`] (the last bucket is open-ended). Only
    /// waits that were actually running are recorded, so the histogram
    /// counts *paid* waits, not free node-local launches.
    pub delay_wait_hist: [u64; 6],
}

impl LocalityStats {
    /// Records one completed delay wait (a job's wait clock being reset by a
    /// node-local launch after `waited`).
    pub fn record_delay_wait(&mut self, waited: mrp_sim::SimDuration) {
        let secs = waited.as_secs_f64();
        let bucket = DELAY_WAIT_BUCKET_SECS
            .iter()
            .position(|&bound| secs < bound)
            .unwrap_or(DELAY_WAIT_BUCKET_SECS.len());
        self.delay_wait_hist[bucket] += 1;
    }

    /// Total completed delay waits across all histogram buckets.
    pub fn delay_waits_total(&self) -> u64 {
        self.delay_wait_hist.iter().sum()
    }
    /// Records one launch at the given locality.
    pub fn record(&mut self, locality: mrp_dfs::Locality) {
        match locality {
            mrp_dfs::Locality::NodeLocal => self.node_local += 1,
            mrp_dfs::Locality::RackLocal => self.rack_local += 1,
            mrp_dfs::Locality::OffRack => self.off_rack += 1,
        }
    }

    /// Total recorded launches.
    pub fn total(&self) -> u64 {
        self.node_local + self.rack_local + self.off_rack
    }

    /// Fraction of launches that were node-local (0 when nothing recorded).
    pub fn node_local_ratio(&self) -> f64 {
        self.ratio(self.node_local)
    }

    /// Fraction of launches that were rack-local.
    pub fn rack_local_ratio(&self) -> f64 {
        self.ratio(self.rack_local)
    }

    /// Fraction of launches that were off-rack.
    pub fn off_rack_ratio(&self) -> f64 {
        self.ratio(self.off_rack)
    }

    fn ratio(&self, count: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            count as f64 / total as f64
        }
    }
}

/// Fault-injection and speculative-execution counters for one run,
/// maintained incrementally by the engine.
///
/// `suspended_tasks_lost` / `lost_suspended_work_secs` quantify the paper's
/// key cost under failure: a suspended task's paged-out state lives on the
/// node that suspended it, so losing the node loses all progress the
/// suspension had preserved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Node crashes injected (rack outages count each member).
    pub node_failures: u64,
    /// Administrative decommissions injected.
    pub node_decommissions: u64,
    /// Nodes returned to service.
    pub node_rejoins: u64,
    /// Attempts — running, suspended, or speculative backups — torn down
    /// because their node left the cluster (a superset of
    /// `re_executed_tasks`: a lost original whose backup is promoted, or a
    /// lost backup whose original lives on, costs an attempt without forcing
    /// a re-execution).
    pub attempts_lost: u64,
    /// Suspended attempts whose preserved (suspended-to-disk) state was lost
    /// with their node.
    pub suspended_tasks_lost: u64,
    /// Work the lost suspended attempts had already completed, in seconds.
    pub lost_suspended_work_secs: f64,
    /// Tasks sent back to `Pending` for re-execution by node loss.
    pub re_executed_tasks: u64,
    /// Block replicas re-created on surviving nodes after node loss.
    pub re_replicated_blocks: u64,
    /// Blocks whose last replica was lost in a crash.
    pub lost_blocks: u64,
    /// Committed map outputs destroyed by node crashes; each forces the map
    /// back to `Pending` (counted in `re_executed_tasks` as well).
    pub lost_map_outputs: u64,
    /// Committed map outputs drained to a surviving node by a graceful
    /// decommission — no re-execution needed, mirroring the graceful block
    /// drain in `mrp_dfs`.
    pub map_outputs_migrated: u64,
    /// Shuffle re-fetch rounds: a reduce finished copying but found map
    /// outputs missing, and went back to sleep on the backoff schedule.
    pub shuffle_refetches: u64,
    /// Speculative (backup) attempts launched.
    pub speculative_launched: u64,
    /// Tasks finished by their speculative attempt (the backup won).
    pub speculative_won: u64,
    /// Work thrown away killing speculation losers, in seconds.
    pub speculative_wasted_secs: f64,
    /// Nodes the failure detector put under suspicion (missed-heartbeat
    /// timeout fired). Zero when [`crate::DetectorConfig`] is off.
    pub nodes_suspected: u64,
    /// Suspicions confirmed dead: the master tore the node down. A heal that
    /// beats the timeout never reaches this counter.
    pub failures_detected: u64,
    /// Sum over detected failures of the lag between the fault striking and
    /// the master confirming it, in seconds.
    pub detection_lag_secs_sum: f64,
    /// Largest single detection lag observed, in seconds.
    pub detection_lag_secs_max: f64,
    /// Network partitions injected (rack partitions count each member).
    pub partitions: u64,
    /// Partitions healed (node reconnected to the master).
    pub partition_heals: u64,
    /// Task completions from a healed partition's buffer (or an orphaned
    /// post-heal attempt) that won first-commit-wins and were committed.
    pub reconciled_commits: u64,
    /// Buffered/orphaned completions discarded at reconciliation because a
    /// re-run already committed the task (or the job was retired).
    pub reconciled_discards: u64,
    /// Tasks committed twice. First-commit-wins reconciliation keeps this at
    /// zero by construction; the bench quality gate asserts it.
    pub duplicate_commits: u64,
    /// Gray-failure (slow-disk / slow-net degradation) events injected.
    pub gray_failures: u64,
    /// Gray failures healed (node restored to full speed).
    pub gray_heals: u64,
}

/// Per-node OS statistics at the end of a run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// The node.
    pub id: NodeId,
    /// Bytes written to the swap device over the whole run.
    pub swap_out_bytes: u64,
    /// Bytes read back from the swap device.
    pub swap_in_bytes: u64,
    /// Bytes read sequentially from disk (block reads).
    pub disk_read_bytes: u64,
    /// Bytes written sequentially to disk.
    pub disk_write_bytes: u64,
    /// Number of OOM-killer invocations on this node.
    pub oom_kills: u64,
    /// Times a process on this node cycled part of its own working set
    /// through swap because it exceeds usable RAM (thrashing under
    /// overcommit).
    #[serde(default)]
    pub thrash_events: u64,
    /// Virtual seconds this node's processes spent stalled on swap I/O,
    /// as accumulated by the block-granular swap device. Zero when the
    /// device is disabled (the legacy byte-granular accounting keeps no
    /// timing) and grows when background DFS traffic shares the spindle.
    #[serde(default)]
    pub swap_io_secs: f64,
}

/// The complete outcome of one simulated run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// One entry per submitted job, in submission order.
    pub jobs: Vec<JobReport>,
    /// One entry per node.
    pub nodes: Vec<NodeReport>,
    /// Map-task launch counts by input locality.
    pub locality: LocalityStats,
    /// Fault-injection and speculation counters.
    pub faults: FaultStats,
    /// Virtual time when the simulation stopped.
    pub finished_at: SimTime,
}

impl ClusterReport {
    /// Finds a job's report by name (the paper refers to jobs as `th`/`tl`).
    pub fn job(&self, name: &str) -> Option<&JobReport> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// Sojourn time in seconds of the job with the given name.
    pub fn sojourn_secs(&self, name: &str) -> Option<f64> {
        self.job(name).and_then(|j| j.sojourn_secs)
    }

    /// The workload makespan: first submission to last completion, in
    /// seconds. `None` if any job is still incomplete.
    pub fn makespan_secs(&self) -> Option<f64> {
        if self.jobs.is_empty() {
            return None;
        }
        let first_submit = self.jobs.iter().map(|j| j.submitted_at).min()?;
        let mut last_completion = SimTime::ZERO;
        for j in &self.jobs {
            last_completion = last_completion.max(j.completed_at?);
        }
        Some((last_completion - first_submit).as_secs_f64())
    }

    /// Total bytes written to swap across all nodes.
    pub fn total_swap_out_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.swap_out_bytes).sum()
    }

    /// Total bytes read from swap across all nodes.
    pub fn total_swap_in_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.swap_in_bytes).sum()
    }

    /// Total work wasted by killed attempts, in seconds.
    pub fn total_wasted_work_secs(&self) -> f64 {
        self.jobs.iter().map(|j| j.wasted_work_secs()).sum()
    }

    /// True when every submitted job completed.
    pub fn all_jobs_complete(&self) -> bool {
        self.jobs.iter().all(|j| j.completed_at.is_some())
    }

    /// Total virtual seconds processes spent stalled on swap I/O across all
    /// nodes (zero unless the block-granular swap device is enabled).
    pub fn total_swap_io_secs(&self) -> f64 {
        self.nodes.iter().map(|n| n.swap_io_secs).sum()
    }

    /// Renders the run as a short human-readable summary: one line per job,
    /// then cluster-wide totals — including the per-node swap-stall time and
    /// the shuffle re-fetch rounds that previously only appeared as raw
    /// struct fields.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let complete = self
            .jobs
            .iter()
            .filter(|j| j.completed_at.is_some())
            .count();
        let _ = writeln!(
            out,
            "run: {} job(s), {complete} complete, finished at {}",
            self.jobs.len(),
            self.finished_at
        );
        if let Some(makespan) = self.makespan_secs() {
            let _ = writeln!(out, "makespan: {makespan:.1}s");
        }
        for job in &self.jobs {
            let sojourn = match job.sojourn_secs {
                Some(s) => format!("sojourn {s:.1}s"),
                None => "incomplete".to_string(),
            };
            let suspends: u32 = job.tasks.iter().map(|t| t.suspend_cycles).sum();
            let _ = writeln!(
                out,
                "  {:<12} prio {:>3}  {:>3} task(s)  {sojourn}  {suspends} suspend cycle(s)  \
                 {:.1}s wasted",
                job.name,
                job.priority,
                job.tasks.len(),
                job.wasted_work_secs(),
            );
        }
        let _ = writeln!(
            out,
            "swap: {} out / {} in bytes, {:.1}s stalled on swap I/O, {} OOM kill(s)",
            self.total_swap_out_bytes(),
            self.total_swap_in_bytes(),
            self.total_swap_io_secs(),
            self.nodes.iter().map(|n| n.oom_kills).sum::<u64>(),
        );
        let _ = writeln!(
            out,
            "shuffle: {} refetch round(s); faults: {} node failure(s), {} attempt(s) lost, \
             {} task(s) re-executed",
            self.faults.shuffle_refetches,
            self.faults.node_failures,
            self.faults.attempts_lost,
            self.faults.re_executed_tasks,
        );
        if self.locality.total() > 0 {
            let _ = writeln!(
                out,
                "locality: {:.0}% node-local, {:.0}% rack-local, {:.0}% off-rack \
                 ({} launch(es))",
                100.0 * self.locality.node_local_ratio(),
                100.0 * self.locality.rack_local_ratio(),
                100.0 * self.locality.off_rack_ratio(),
                self.locality.total(),
            );
        }
        out
    }
}

/// The kinds of schedule events recorded in the run trace (used by the
/// examples to print Figure-1-style task execution schedules).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A job was submitted.
    JobSubmitted,
    /// A task attempt was launched.
    Launched,
    /// A task was suspended (`SIGTSTP` delivered).
    Suspended,
    /// A task was resumed (`SIGCONT` delivered).
    Resumed,
    /// A task attempt was killed.
    Killed,
    /// A task completed successfully.
    Completed,
    /// A job completed.
    JobCompleted,
    /// A node crashed (fault injection).
    NodeFailed,
    /// A node was administratively decommissioned.
    NodeDecommissioned,
    /// A node returned to service.
    NodeRejoined,
    /// A speculative (backup) attempt was launched for a straggler.
    Speculated,
    /// A reduce finished copying but some map outputs are gone; it stalls
    /// in Shuffle and re-fetches with exponential backoff.
    ShuffleStalled,
    /// A committed map's node-local output died with its node; the map goes
    /// back to `Pending` for re-execution.
    MapOutputLost,
    /// The failure detector's missed-heartbeat timeout fired for a node; the
    /// master now suspects it dead.
    NodeSuspected,
    /// A node was cut off from the master by a network partition (it keeps
    /// executing, but heartbeats and completions no longer arrive).
    NodePartitioned,
    /// A partitioned node reconnected; buffered completions reconcile
    /// first-commit-wins.
    PartitionHealed,
    /// A node entered gray failure: alive, heartbeating, but with its disk
    /// and/or network slowed by the configured multipliers.
    NodeDegraded,
    /// A gray-failed node was restored to full speed.
    DegradationHealed,
}

/// One entry of the run trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// The job involved.
    pub job: JobId,
    /// The task involved, if the event is task-level.
    pub task: Option<TaskId>,
    /// The node involved, if any.
    pub node: Option<NodeId>,
    /// Extra context (progress at suspension, paging stall, …).
    pub detail: String,
}

impl TraceEntry {
    /// Renders the entry as a single human-readable line.
    pub fn to_line(&self) -> String {
        let task = self.task.map(|t| format!(" {t}")).unwrap_or_default();
        let node = self.node.map(|n| format!(" on {n}")).unwrap_or_default();
        let detail = if self.detail.is_empty() {
            String::new()
        } else {
            format!(" ({})", self.detail)
        };
        format!(
            "[{:>9}] {:?} {}{task}{node}{detail}",
            format!("{}", self.at),
            self.kind,
            self.job
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, TaskKind, TaskRuntime, TaskState};

    fn report_with_two_jobs() -> ClusterReport {
        let make = |id: u32, name: &str, submit: u64, complete: Option<u64>| {
            let mut job = JobRuntime {
                id: JobId(id),
                spec: JobSpec::synthetic(name, 1, 100),
                submitted_at: SimTime::from_secs(submit),
                completed_at: complete.map(SimTime::from_secs),
                tasks: vec![TaskRuntime::new(
                    TaskId {
                        job: JobId(id),
                        kind: TaskKind::Map,
                        index: 0,
                    },
                    100,
                    vec![],
                )],
                schedulable_maps: 1,
                schedulable_reduces: 0,
                suspended_count: 0,
                occupying_count: 0,
                speculative_live: 0,
            };
            if complete.is_some() {
                job.tasks[0].set_state(TaskState::Running);
                job.tasks[0].set_state(TaskState::Succeeded);
            }
            JobReport::from_runtime(&job)
        };
        ClusterReport {
            jobs: vec![make(1, "tl", 0, Some(170)), make(2, "th", 40, Some(125))],
            nodes: vec![NodeReport {
                id: NodeId(0),
                swap_out_bytes: 1024,
                swap_in_bytes: 512,
                disk_read_bytes: 0,
                disk_write_bytes: 0,
                oom_kills: 0,
                thrash_events: 0,
                swap_io_secs: 0.0,
            }],
            locality: LocalityStats::default(),
            faults: FaultStats::default(),
            finished_at: SimTime::from_secs(170),
        }
    }

    #[test]
    fn sojourn_and_makespan() {
        let r = report_with_two_jobs();
        assert_eq!(r.sojourn_secs("tl"), Some(170.0));
        assert_eq!(r.sojourn_secs("th"), Some(85.0));
        assert_eq!(r.makespan_secs(), Some(170.0));
        assert!(r.all_jobs_complete());
        assert_eq!(r.total_swap_out_bytes(), 1024);
        assert_eq!(r.total_swap_in_bytes(), 512);
        assert!(r.job("missing").is_none());
    }

    #[test]
    fn incomplete_jobs_have_no_makespan() {
        let mut r = report_with_two_jobs();
        r.jobs[1].completed_at = None;
        r.jobs[1].sojourn_secs = None;
        assert_eq!(r.makespan_secs(), None);
        assert!(!r.all_jobs_complete());
    }

    #[test]
    fn trace_lines_are_readable() {
        let e = TraceEntry {
            at: SimTime::from_secs(42),
            kind: TraceKind::Suspended,
            job: JobId(1),
            task: Some(TaskId {
                job: JobId(1),
                kind: TaskKind::Map,
                index: 0,
            }),
            node: Some(NodeId(0)),
            detail: "progress 62%".into(),
        };
        let line = e.to_line();
        assert!(line.contains("Suspended"));
        assert!(line.contains("job_0001"));
        assert!(line.contains("progress 62%"));
    }

    #[test]
    fn empty_report_has_no_makespan() {
        let r = ClusterReport {
            jobs: vec![],
            nodes: vec![],
            locality: LocalityStats::default(),
            faults: FaultStats::default(),
            finished_at: SimTime::ZERO,
        };
        assert_eq!(r.makespan_secs(), None);
        assert!(r.all_jobs_complete());
        assert_eq!(r.total_wasted_work_secs(), 0.0);
    }

    #[test]
    fn summary_surfaces_swap_io_and_refetches() {
        let mut r = report_with_two_jobs();
        r.nodes[0].swap_io_secs = 12.25;
        r.faults.shuffle_refetches = 3;
        assert_eq!(r.total_swap_io_secs(), 12.25);
        let text = r.summary();
        assert!(text.contains("2 job(s), 2 complete"));
        assert!(text.contains("makespan: 170.0s"));
        assert!(text.contains("12.2s stalled on swap I/O"));
        assert!(text.contains("3 refetch round(s)"));
        assert!(text.contains("tl"));
        assert!(text.contains("th"));
    }

    #[test]
    fn locality_stats_record_and_ratios() {
        use mrp_dfs::Locality;
        let mut s = LocalityStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.node_local_ratio(), 0.0);
        s.record(Locality::NodeLocal);
        s.record(Locality::NodeLocal);
        s.record(Locality::RackLocal);
        s.record(Locality::OffRack);
        assert_eq!(s.total(), 4);
        assert_eq!(s.node_local, 2);
        assert_eq!(s.node_local_ratio(), 0.5);
        assert_eq!(s.rack_local_ratio(), 0.25);
        assert_eq!(s.off_rack_ratio(), 0.25);
    }

    #[test]
    fn delay_wait_histogram_buckets() {
        use mrp_sim::SimDuration;
        let mut s = LocalityStats::default();
        s.record_delay_wait(SimDuration::from_millis(500)); // < 1s
        s.record_delay_wait(SimDuration::from_secs(2)); // < 3s
        s.record_delay_wait(SimDuration::from_secs(3)); // < 10s
        s.record_delay_wait(SimDuration::from_secs(29)); // < 30s
        s.record_delay_wait(SimDuration::from_secs(99)); // < 100s
        s.record_delay_wait(SimDuration::from_secs(5_000)); // open-ended
        assert_eq!(s.delay_wait_hist, [1, 1, 1, 1, 1, 1]);
        assert_eq!(s.delay_waits_total(), 6);
    }
}
