//! Jobs, tasks, and the JobTracker-side task state machine.
//!
//! The paper's contribution adds three states to Hadoop's JobTracker task
//! bookkeeping — `MUST_SUSPEND`, `SUSPENDED` and `MUST_RESUME` — mirroring the
//! way the existing kill path is implemented (a "must" state is set when the
//! command is received, and the actual transition happens when the involved
//! TaskTracker acts on the command piggybacked on its next heartbeat).

use mrp_dfs::NodeId;
use mrp_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a submitted job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

/// Map or reduce.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum TaskKind {
    /// A map task consuming one input split.
    Map,
    /// A reduce task consuming one partition of every map output.
    Reduce,
}

impl TaskKind {
    /// Single-letter code used in Hadoop attempt names (`m` / `r`).
    pub fn code(self) -> char {
        match self {
            TaskKind::Map => 'm',
            TaskKind::Reduce => 'r',
        }
    }
}

/// Identifier of a task within a job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId {
    /// The job this task belongs to.
    pub job: JobId,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Index among tasks of the same kind.
    pub index: u32,
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task_{:04}_{}_{:06}",
            self.job.0,
            self.kind.code(),
            self.index
        )
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Identifier of one execution attempt of a task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttemptId {
    /// The task being attempted.
    pub task: TaskId,
    /// Attempt number, starting at 0 (kill-based preemption creates new
    /// attempts; suspend/resume keeps the same one).
    pub number: u32,
}

impl fmt::Debug for AttemptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attempt_{:04}_{}_{:06}_{}",
            self.task.job.0,
            self.task.kind.code(),
            self.task.index,
            self.number
        )
    }
}

impl fmt::Display for AttemptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Per-job overrides of the synthetic task execution profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskProfile {
    /// Overrides the cluster-wide parse rate (bytes/second), if set.
    pub parse_rate_bytes_per_sec: Option<f64>,
    /// Extra memory allocated in the task's setup phase, modelling stateful
    /// mappers/reducers (the paper's memory-hungry worst case allocates
    /// 2–2.5 GB here).
    pub state_memory: u64,
    /// Fraction of the state memory written (dirty); the paper's tasks write
    /// random values to all of it, so the default is 1.0.
    pub state_dirty_fraction: f64,
    /// Overrides the output/input size ratio, if set.
    pub output_ratio: Option<f64>,
}

impl Default for TaskProfile {
    fn default() -> Self {
        TaskProfile {
            parse_rate_bytes_per_sec: None,
            state_memory: 0,
            state_dirty_fraction: 1.0,
            output_ratio: None,
        }
    }
}

impl TaskProfile {
    /// A light-weight, stateless task (the paper's baseline experiments).
    pub fn lightweight() -> Self {
        TaskProfile::default()
    }

    /// A memory-hungry, stateful task allocating `state_memory` bytes of
    /// dirty memory in its setup phase (the paper's worst-case experiments).
    pub fn memory_hungry(state_memory: u64) -> Self {
        TaskProfile {
            state_memory,
            ..TaskProfile::default()
        }
    }
}

/// Where a job's map input comes from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MapInput {
    /// Read an existing file in the simulated HDFS; one map task per block.
    DfsFile {
        /// Path of the input file.
        path: String,
    },
    /// Synthetic input that does not correspond to a stored file: `tasks`
    /// map tasks each reading `bytes_per_task` bytes with no particular
    /// locality.
    Synthetic {
        /// Number of map tasks.
        tasks: u32,
        /// Input bytes per task.
        bytes_per_task: u64,
    },
}

/// The description of a job handed to the JobTracker at submission.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable name; also used by trigger configurations to refer to
    /// jobs before they have an id.
    pub name: String,
    /// Priority: larger values are more important. The paper's scenario uses
    /// a high-priority job `th` and a low-priority job `tl`.
    pub priority: i32,
    /// Map input description.
    pub input: MapInput,
    /// Number of reduce tasks (0 for the paper's map-only jobs).
    pub reduce_tasks: u32,
    /// Execution profile overrides.
    pub profile: TaskProfile,
    /// Tenant (queue) this job is charged to by multi-tenant policies.
    /// Single-tenant workloads leave the default `0`; the engine itself
    /// never reads it.
    #[serde(default)]
    pub tenant: u32,
    /// True for best-effort (scavenger-class) jobs: excluded from tenant
    /// share accounting, launched only into capacity nobody else wants, and
    /// evicted first when that capacity is reclaimed. The engine itself
    /// never reads it — it is policy metadata, like `tenant`.
    #[serde(default)]
    pub best_effort: bool,
}

impl JobSpec {
    /// A map-only job reading the given DFS file.
    pub fn map_only(name: impl Into<String>, path: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            priority: 0,
            input: MapInput::DfsFile { path: path.into() },
            reduce_tasks: 0,
            profile: TaskProfile::default(),
            tenant: 0,
            best_effort: false,
        }
    }

    /// A synthetic map-only job that does not need a DFS file.
    pub fn synthetic(name: impl Into<String>, tasks: u32, bytes_per_task: u64) -> Self {
        JobSpec {
            name: name.into(),
            priority: 0,
            input: MapInput::Synthetic {
                tasks,
                bytes_per_task,
            },
            reduce_tasks: 0,
            profile: TaskProfile::default(),
            tenant: 0,
            best_effort: false,
        }
    }

    /// Sets the priority, builder style.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the profile, builder style.
    pub fn with_profile(mut self, profile: TaskProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the number of reduce tasks, builder style.
    pub fn with_reduces(mut self, reduces: u32) -> Self {
        self.reduce_tasks = reduces;
        self
    }

    /// Charges the job to a tenant, builder style.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Marks the job best-effort (scavenger class), builder style.
    pub fn with_best_effort(mut self) -> Self {
        self.best_effort = true;
        self
    }
}

/// JobTracker-side task states, including the paper's suspension states.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TaskState {
    /// Not yet assigned to any TaskTracker.
    Pending,
    /// Running on a TaskTracker.
    Running,
    /// The user or the scheduler asked for suspension; the command will be
    /// piggybacked on the next heartbeat of the involved TaskTracker.
    MustSuspend,
    /// The TaskTracker confirmed the task is stopped (`SIGTSTP` delivered).
    Suspended,
    /// Resume requested; the command travels on the next heartbeat.
    MustResume,
    /// Kill requested; the command travels on the next heartbeat.
    MustKill,
    /// The task completed successfully.
    Succeeded,
    /// The current attempt was killed (the task itself goes back to
    /// [`TaskState::Pending`] for rescheduling unless the job is done).
    Killed,
}

impl TaskState {
    /// True if the task is in a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, TaskState::Succeeded)
    }

    /// True if the task currently occupies a slot on some TaskTracker.
    pub fn occupies_slot(self) -> bool {
        matches!(
            self,
            TaskState::Running | TaskState::MustSuspend | TaskState::MustKill
        )
    }

    /// True if a scheduler may launch (or re-launch) this task on a node.
    pub fn is_schedulable(self) -> bool {
        matches!(self, TaskState::Pending | TaskState::Killed)
    }

    /// Whether a transition from `self` to `next` is legal in the JobTracker
    /// state machine (including the suspend/resume extension).
    pub fn can_transition_to(self, next: TaskState) -> bool {
        use TaskState::*;
        matches!(
            (self, next),
            (Pending, Running)
                | (Killed, Running)
                | (Running, MustSuspend)
                | (Running, MustKill)
                | (Running, Succeeded)
                | (Running, Killed)
                | (MustSuspend, Suspended)
                | (MustSuspend, Succeeded) // completed before the command arrived
                | (MustSuspend, Killed)
                | (MustSuspend, MustKill)
                | (Suspended, MustResume)
                | (Suspended, MustKill)
                | (Suspended, Killed)
                | (MustResume, Running)
                | (MustResume, Killed)
                | (MustResume, MustKill)
                | (MustKill, Killed)
                | (MustKill, Succeeded) // completed before the command arrived
                | (Killed, Pending)
                // A speculative backup attempt can complete while the
                // original attempt sits suspended (or waits for a resume):
                // first finisher wins, the task succeeds.
                | (Suspended, Succeeded)
                | (MustResume, Succeeded)
        )
    }
}

/// JobTracker-side bookkeeping for one task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskRuntime {
    /// The task's identifier.
    pub id: TaskId,
    /// Bytes of input this task consumes.
    pub input_bytes: u64,
    /// Nodes holding a local replica of the input (empty for synthetic input).
    pub preferred_nodes: Vec<NodeId>,
    /// Current JobTracker-side state.
    pub state: TaskState,
    /// Last reported progress in `[0, 1]` (fraction of input processed).
    pub progress: f64,
    /// Node where the current attempt runs or is suspended.
    pub node: Option<NodeId>,
    /// Number of attempts created so far.
    pub attempts_made: u32,
    /// Identifier of the live attempt, if any.
    pub current_attempt: Option<AttemptId>,
    /// Identifier of the live speculative (backup) attempt, if any; always on
    /// a different node than [`TaskRuntime::node`].
    pub spec_attempt: Option<AttemptId>,
    /// Node where the speculative attempt runs.
    pub spec_node: Option<NodeId>,
    /// When the first attempt started.
    pub first_launched_at: Option<SimTime>,
    /// When the task succeeded.
    pub finished_at: Option<SimTime>,
    /// Work thrown away because attempts were killed.
    pub wasted_work: SimDuration,
    /// Number of suspend/resume cycles the task went through.
    pub suspend_cycles: u32,
    /// Cumulative bytes of this task's memory paged out to swap (over all
    /// attempts); the quantity reported in Figure 4.
    pub paged_out_bytes: u64,
    /// Cumulative bytes paged back in.
    pub paged_in_bytes: u64,
}

impl TaskRuntime {
    /// Creates the bookkeeping entry for a freshly defined task.
    pub fn new(id: TaskId, input_bytes: u64, preferred_nodes: Vec<NodeId>) -> Self {
        TaskRuntime {
            id,
            input_bytes,
            preferred_nodes,
            state: TaskState::Pending,
            progress: 0.0,
            node: None,
            attempts_made: 0,
            current_attempt: None,
            spec_attempt: None,
            spec_node: None,
            first_launched_at: None,
            finished_at: None,
            wasted_work: SimDuration::ZERO,
            suspend_cycles: 0,
            paged_out_bytes: 0,
            paged_in_bytes: 0,
        }
    }

    /// Transitions the task to `next`, panicking on illegal transitions: an
    /// illegal transition is always an engine bug, never a recoverable
    /// runtime condition.
    pub fn set_state(&mut self, next: TaskState) {
        assert!(
            self.state.can_transition_to(next),
            "illegal task state transition {:?} -> {:?} for {:?}",
            self.state,
            next,
            self.id
        );
        self.state = next;
    }

    /// The next attempt id for this task.
    pub fn next_attempt(&mut self) -> AttemptId {
        let id = AttemptId {
            task: self.id,
            number: self.attempts_made,
        };
        self.attempts_made += 1;
        id
    }
}

/// JobTracker-side bookkeeping for one job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobRuntime {
    /// The job's identifier.
    pub id: JobId,
    /// The submitted specification.
    pub spec: JobSpec,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time of the last task, once the job is done.
    pub completed_at: Option<SimTime>,
    /// All tasks of the job (maps first, then reduces).
    pub tasks: Vec<TaskRuntime>,
    /// Number of map tasks currently in a schedulable state. Maintained
    /// incrementally by the engine on every task state transition so
    /// schedulers can skip exhausted jobs in O(1) instead of scanning their
    /// (potentially huge) task lists per heartbeat — and, split by kind, so
    /// a node with only a free reduce slot never scans a map-only job. After
    /// hand-building a `JobRuntime` or mutating task states directly, call
    /// [`JobRuntime::recount_task_states`].
    pub schedulable_maps: u32,
    /// Number of reduce tasks currently in a schedulable state (same
    /// maintenance contract as [`JobRuntime::schedulable_maps`]).
    pub schedulable_reduces: u32,
    /// Number of tasks currently in [`TaskState::Suspended`] (same
    /// maintenance contract as [`JobRuntime::schedulable_count`]).
    pub suspended_count: u32,
    /// Number of tasks currently occupying a slot somewhere
    /// ([`TaskState::occupies_slot`]; same maintenance contract).
    pub occupying_count: u32,
    /// Number of live speculative (backup) attempts across the job's tasks
    /// (same maintenance contract); bounds speculation slot waste in O(1).
    pub speculative_live: u32,
}

impl JobRuntime {
    /// Tasks of either kind currently in a schedulable state.
    pub fn schedulable_count(&self) -> u32 {
        self.schedulable_maps + self.schedulable_reduces
    }

    /// Recomputes the maintained per-state task counters from the task list.
    /// The engine keeps them in sync incrementally; tests and harnesses that
    /// build or mutate `JobRuntime` values by hand call this afterwards.
    pub fn recount_task_states(&mut self) {
        self.schedulable_maps = self
            .tasks
            .iter()
            .filter(|t| t.id.kind == TaskKind::Map && t.state.is_schedulable())
            .count() as u32;
        self.schedulable_reduces = self
            .tasks
            .iter()
            .filter(|t| t.id.kind == TaskKind::Reduce && t.state.is_schedulable())
            .count() as u32;
        self.suspended_count = self
            .tasks
            .iter()
            .filter(|t| t.state == TaskState::Suspended)
            .count() as u32;
        self.occupying_count = self
            .tasks
            .iter()
            .filter(|t| t.state.occupies_slot())
            .count() as u32;
        self.speculative_live = self
            .tasks
            .iter()
            .filter(|t| t.spec_attempt.is_some())
            .count() as u32;
    }
    /// Looks up a task by id.
    ///
    /// Map tasks sit at `tasks[index]` by construction (maps first, then
    /// reduces), so the common lookup is O(1); the linear scan only remains as
    /// a fallback for reduce tasks and hand-built task vectors in tests.
    pub fn task(&self, id: TaskId) -> Option<&TaskRuntime> {
        if id.kind == TaskKind::Map {
            if let Some(t) = self.tasks.get(id.index as usize) {
                if t.id == id {
                    return Some(t);
                }
            }
        }
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Mutable task lookup (same O(1) fast path as [`JobRuntime::task`]).
    pub fn task_mut(&mut self, id: TaskId) -> Option<&mut TaskRuntime> {
        if id.kind == TaskKind::Map {
            let direct = self
                .tasks
                .get(id.index as usize)
                .map(|t| t.id == id)
                .unwrap_or(false);
            if direct {
                return self.tasks.get_mut(id.index as usize);
            }
        }
        self.tasks.iter_mut().find(|t| t.id == id)
    }

    /// True when every task has succeeded.
    ///
    /// O(tasks): scans the task list. On scheduler hot paths prefer
    /// [`JobRuntime::is_finished`], which reads the engine-maintained
    /// completion stamp in O(1).
    pub fn is_complete(&self) -> bool {
        !self.tasks.is_empty() && self.tasks.iter().all(|t| t.state.is_terminal())
    }

    /// O(1) completion check: the engine stamps `completed_at` the moment the
    /// last task succeeds, so for jobs observed through a
    /// [`SchedulerContext`](crate::SchedulerContext) this is equivalent to
    /// [`JobRuntime::is_complete`] without the task scan.
    pub fn is_finished(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Time from submission to completion, if the job is done — the paper's
    /// *sojourn time* metric.
    pub fn sojourn(&self) -> Option<SimDuration> {
        self.completed_at.map(|c| c - self.submitted_at)
    }

    /// Total work wasted by killed attempts across all tasks.
    pub fn wasted_work(&self) -> SimDuration {
        self.tasks
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.wasted_work)
    }
}

/// The JobTracker's job table: a dense `Vec` indexed by job id.
///
/// Job ids are assigned sequentially from 1 and jobs are never removed, so
/// `jobs[id - 1]` is an O(1), single-cache-line lookup — this sits on every
/// hot path that resolves a `TaskId` (per-heartbeat progress refreshes,
/// `fill_node`'s per-job skips), where the `BTreeMap` it replaces cost a
/// multi-level pointer walk per access. The API mirrors the map it replaced
/// (including `(&JobId, &JobRuntime)` iteration in id order), so determinism
/// and call sites are unchanged.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: Vec<JobRuntime>,
}

impl JobTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Inserts the next job.
    ///
    /// # Panics
    /// Panics unless `id == job.id` and ids arrive densely (1, 2, 3, …) —
    /// the JobTracker assigns them that way, and density is what makes every
    /// lookup O(1).
    pub fn insert(&mut self, id: JobId, job: JobRuntime) {
        assert_eq!(id, job.id, "job inserted under a foreign id");
        assert_eq!(
            id.0 as usize,
            self.jobs.len() + 1,
            "job ids must be dense and sequential from 1"
        );
        self.jobs.push(job);
    }

    /// Looks up a job by id (O(1)).
    pub fn get(&self, id: &JobId) -> Option<&JobRuntime> {
        self.jobs.get((id.0 as usize).checked_sub(1)?)
    }

    /// Mutable lookup by id (O(1)).
    pub fn get_mut(&mut self, id: &JobId) -> Option<&mut JobRuntime> {
        self.jobs.get_mut((id.0 as usize).checked_sub(1)?)
    }

    /// All jobs in id (= submission) order.
    pub fn values(&self) -> std::slice::Iter<'_, JobRuntime> {
        self.jobs.iter()
    }

    /// Mutable iteration in id order.
    pub fn values_mut(&mut self) -> std::slice::IterMut<'_, JobRuntime> {
        self.jobs.iter_mut()
    }

    /// `(&id, &job)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&JobId, &JobRuntime)> {
        self.jobs.iter().map(|j| (&j.id, j))
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

impl std::ops::Index<&JobId> for JobTable {
    type Output = JobRuntime;
    fn index(&self, id: &JobId) -> &JobRuntime {
        self.get(id).expect("unknown job id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid() -> TaskId {
        TaskId {
            job: JobId(1),
            kind: TaskKind::Map,
            index: 0,
        }
    }

    #[test]
    fn identifiers_format_like_hadoop() {
        let t = tid();
        assert_eq!(format!("{t}"), "task_0001_m_000000");
        let a = AttemptId { task: t, number: 2 };
        assert_eq!(format!("{a}"), "attempt_0001_m_000000_2");
        assert_eq!(format!("{}", JobId(7)), "job_0007");
    }

    #[test]
    fn spec_builders() {
        let spec = JobSpec::map_only("tl", "/input")
            .with_priority(-1)
            .with_profile(TaskProfile::memory_hungry(2_000_000_000))
            .with_reduces(2);
        assert_eq!(spec.priority, -1);
        assert_eq!(spec.reduce_tasks, 2);
        assert_eq!(spec.profile.state_memory, 2_000_000_000);
        assert_eq!(spec.tenant, 0);
        assert!(!spec.best_effort);
        let synth = JobSpec::synthetic("s", 4, 1024)
            .with_tenant(3)
            .with_best_effort();
        assert!(matches!(synth.input, MapInput::Synthetic { tasks: 4, .. }));
        assert_eq!(synth.tenant, 3);
        assert!(synth.best_effort);
    }

    #[test]
    fn legal_suspend_resume_lifecycle() {
        let mut t = TaskRuntime::new(tid(), 512, vec![]);
        t.set_state(TaskState::Running);
        t.set_state(TaskState::MustSuspend);
        t.set_state(TaskState::Suspended);
        t.set_state(TaskState::MustResume);
        t.set_state(TaskState::Running);
        t.set_state(TaskState::Succeeded);
        assert!(t.state.is_terminal());
    }

    #[test]
    fn legal_kill_and_reschedule_lifecycle() {
        let mut t = TaskRuntime::new(tid(), 512, vec![]);
        t.set_state(TaskState::Running);
        t.set_state(TaskState::MustKill);
        t.set_state(TaskState::Killed);
        t.set_state(TaskState::Pending);
        t.set_state(TaskState::Running);
        t.set_state(TaskState::Succeeded);
    }

    #[test]
    fn completion_can_race_a_suspend_command() {
        // "The following heartbeat notifies the JobTracker whether the task
        // has been suspended — or whether it completed in the meanwhile."
        let mut t = TaskRuntime::new(tid(), 512, vec![]);
        t.set_state(TaskState::Running);
        t.set_state(TaskState::MustSuspend);
        t.set_state(TaskState::Succeeded);
    }

    #[test]
    #[should_panic(expected = "illegal task state transition")]
    fn illegal_transition_panics() {
        let mut t = TaskRuntime::new(tid(), 512, vec![]);
        t.set_state(TaskState::Suspended); // Pending -> Suspended is illegal
    }

    #[test]
    fn state_predicates() {
        assert!(TaskState::Pending.is_schedulable());
        assert!(TaskState::Killed.is_schedulable());
        assert!(!TaskState::Suspended.is_schedulable());
        assert!(TaskState::Running.occupies_slot());
        assert!(TaskState::MustSuspend.occupies_slot());
        assert!(!TaskState::Suspended.occupies_slot());
        assert!(TaskState::Succeeded.is_terminal());
        assert!(!TaskState::Killed.is_terminal());
    }

    #[test]
    fn attempt_numbers_increment() {
        let mut t = TaskRuntime::new(tid(), 512, vec![]);
        assert_eq!(t.next_attempt().number, 0);
        assert_eq!(t.next_attempt().number, 1);
        assert_eq!(t.attempts_made, 2);
    }

    #[test]
    fn job_runtime_completion_and_sojourn() {
        let spec = JobSpec::synthetic("j", 1, 100);
        let mut job = JobRuntime {
            id: JobId(1),
            spec,
            submitted_at: SimTime::from_secs(10),
            completed_at: None,
            tasks: vec![TaskRuntime::new(tid(), 100, vec![])],
            schedulable_maps: 0,
            schedulable_reduces: 0,
            suspended_count: 0,
            occupying_count: 0,
            speculative_live: 0,
        };
        job.recount_task_states();
        assert_eq!(job.schedulable_count(), 1);
        assert_eq!(job.schedulable_maps, 1);
        assert_eq!(job.schedulable_reduces, 0);
        assert_eq!(job.suspended_count, 0);
        assert_eq!(job.occupying_count, 0);
        assert!(!job.is_complete());
        assert!(job.sojourn().is_none());
        job.tasks[0].set_state(TaskState::Running);
        job.tasks[0].set_state(TaskState::Succeeded);
        job.completed_at = Some(SimTime::from_secs(110));
        assert!(job.is_complete());
        assert_eq!(job.sojourn().unwrap(), SimDuration::from_secs(100));
        assert!(job.task(tid()).is_some());
        assert!(job.task_mut(tid()).is_some());
    }
}
