//! Plugin points for action-pipeline schedulers.
//!
//! The Volcano/kube-batch lineage structures a scheduling round as a fixed
//! sequence of *actions* (`allocate`, `preempt`, `reclaim`, `backfill`)
//! whose decisions are delegated to *plugin functions*. This module defines
//! the plugin vocabulary the engine exposes to such pipelines: job-ordering
//! ([`JobOrder`]), victim selection ([`TaskOrderFn`] over
//! [`PreemptableTask`]s produced by a [`PreemptableSetFn`]), node scoring
//! ([`NodeScoreFn`]), and multi-tenant share accounting ([`TenantLedger`]).
//! The pipeline itself — and the concrete plugin bundles that reproduce the
//! FIFO/FAIR/HFSP policies — lives in the `mrp-preempt` crate, next to the
//! preemption primitives it dispatches.
//!
//! Everything here is policy-side vocabulary: the engine never consults
//! these types on its own, it only hands pipelines the
//! [`SchedulerContext`] they read.

use crate::job::{JobId, TaskId, TaskKind};
use crate::scheduler::SchedulerContext;
use mrp_dfs::NodeId;
use mrp_sim::{SimDuration, SimTime};

/// A running task a preempt/reclaim action may evict, with the attributes
/// victim-selection plugins rank by.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PreemptableTask {
    /// The candidate task.
    pub task: TaskId,
    /// Its last reported progress in `[0, 1]`.
    pub progress: f64,
    /// Approximate resident memory of the attempt (state memory plus the
    /// base task footprint) — what a suspension would page out.
    pub memory_bytes: u64,
}

/// Job-ordering plugin: decides which jobs an `allocate` action serves, and
/// in what order, each time a node offers slots.
///
/// `refresh` may keep internal caches (the HFSP bundle refreshes its
/// size-based order at most once per simulated second); returning `false`
/// skips the allocation round for this node entirely, caches untouched.
///
/// ```
/// use mrp_engine::{JobId, JobOrder, NodeId, SchedulerContext};
///
/// /// Plain submission order, skipping finished jobs.
/// struct SubmissionOrder;
///
/// impl JobOrder for SubmissionOrder {
///     fn refresh(
///         &mut self,
///         ctx: &SchedulerContext<'_>,
///         _node: NodeId,
///         order: &mut Vec<JobId>,
///     ) -> bool {
///         order.clear();
///         order.extend(ctx.jobs.values().filter(|j| !j.is_finished()).map(|j| j.id));
///         true
///     }
/// }
/// ```
pub trait JobOrder {
    /// Rebuilds `order` (the jobs to serve, first to last) for a round on
    /// `node`. Return `false` to skip the round without touching `order`.
    fn refresh(&mut self, ctx: &SchedulerContext<'_>, node: NodeId, order: &mut Vec<JobId>)
        -> bool;

    /// Notifies the plugin of a job submission (cache invalidation hook).
    fn job_submitted(&mut self, _job: JobId) {}

    /// Notifies the plugin of a job completion (cache invalidation hook).
    fn job_finished(&mut self, _job: JobId) {}
}

/// Boxed [`JobOrder`] — the form action pipelines store.
pub type JobOrderFn = Box<dyn JobOrder>;

/// Victim-selection plugin: given the preemptable tasks of one job, picks up
/// to `take` victims, best-to-evict first. The FAIR/HFSP bundles wrap their
/// `EvictionPolicy` (and its seeded RNG) in one of these.
pub type TaskOrderFn =
    Box<dyn FnMut(&SchedulerContext<'_>, &[PreemptableTask], usize) -> Vec<TaskId>>;

/// Node-scoring plugin: ranks `node` as a backfill target for `job`. A
/// negative score vetoes the node; among non-negative scores, higher is
/// better. The default multi-tenant bundle scores every node `0` and leans
/// on the engine's placement vetoes instead.
pub type NodeScoreFn = Box<dyn FnMut(&SchedulerContext<'_>, JobId, NodeId) -> i64>;

/// Preemptable-set plugin: enumerates the tasks of `job` an eviction may
/// target (the FAIR/HFSP bundles list the job's `Running` tasks; a gentler
/// plugin could exclude tasks past a progress threshold).
pub type PreemptableSetFn = Box<dyn FnMut(&SchedulerContext<'_>, JobId) -> Vec<PreemptableTask>>;

/// Per-tenant share statistics summarized from a [`TenantLedger`] at the
/// end of a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantShareStats {
    /// The tenant.
    pub tenant: u32,
    /// Its configured quota: `weight / Σ weights`.
    pub quota: f64,
    /// Time-weighted mean dominant share over steady-state time.
    pub mean_dominant_share: f64,
    /// Time-weighted mean of `max(0, dominant_share - quota)` over
    /// steady-state time where some *other* tenant had unmet demand past
    /// the reclaim grace period — the DRF fairness-gate quantity. Exceeding
    /// quota while nobody else wants the capacity is work conservation, not
    /// unfairness, so uncontended time never accrues excess; shortfalls
    /// briefer than a reclaim round are scheduling latency, not contention.
    pub mean_excess_over_quota: f64,
    /// Dominant share at the last observation.
    pub final_dominant_share: f64,
}

/// Dominant-resource-fairness accounting over (map slots, reduce slots),
/// shared between a reclaim action and the experiment harness.
///
/// A tenant's *dominant share* is the larger of its map-slot and
/// reduce-slot usage fractions (DRF over the two slot resources); its
/// *quota* is `weight / Σ weights`. [`TenantLedger::observe`] snapshots
/// usage and pending demand from a [`SchedulerContext`] and integrates the
/// shares over simulated time, so the end-of-run [`TenantLedger::summary`]
/// is a time-weighted account rather than a point sample. Best-effort jobs
/// ([`crate::JobSpec::best_effort`]) are invisible to the ledger: they are
/// charged to nobody and create no demand.
///
/// ```
/// use mrp_engine::TenantLedger;
/// use mrp_sim::SimTime;
///
/// let ledger = TenantLedger::new(vec![1.0, 3.0], 16, 8, SimTime::from_secs(60));
/// assert_eq!(ledger.tenants(), 2);
/// assert!((ledger.quota(0) - 0.25).abs() < 1e-12);
/// assert!((ledger.quota(1) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct TenantLedger {
    weights: Vec<f64>,
    weight_sum: f64,
    total_map_slots: u32,
    total_reduce_slots: u32,
    steady_after: SimTime,
    last_observed: Option<SimTime>,
    usage_maps: Vec<u32>,
    usage_reduces: Vec<u32>,
    demand_maps: Vec<u32>,
    demand_reduces: Vec<u32>,
    steady_secs: f64,
    share_secs: Vec<f64>,
    contended_secs: Vec<f64>,
    excess_secs: Vec<f64>,
    /// When each tenant's current uninterrupted starvation began (`None`
    /// while not starved). Drives [`TenantLedger::chronically_starved`].
    starved_since: Vec<Option<SimTime>>,
}

/// Starvation shorter than this is the scheduler's designed response
/// latency — a reclaim round fires once per simulated second, plus a
/// heartbeat to deliver the eviction — not unfairness. Contention (and so
/// excess-over-quota) accrues only while some tenant has been starved
/// longer than this grace continuously.
const STARVATION_GRACE: SimDuration = SimDuration::from_secs(2);

impl TenantLedger {
    /// Creates a ledger for `weights.len()` tenants over a cluster with the
    /// given slot totals. Time before `steady_after` is warm-up: observed
    /// for current usage but excluded from the integrated statistics.
    ///
    /// # Panics
    /// Panics when `weights` is empty or contains a non-positive weight.
    pub fn new(
        weights: Vec<f64>,
        total_map_slots: u32,
        total_reduce_slots: u32,
        steady_after: SimTime,
    ) -> Self {
        assert!(!weights.is_empty(), "a tenant ledger needs >= 1 tenant");
        assert!(
            weights.iter().all(|w| *w > 0.0),
            "tenant weights must be positive"
        );
        let n = weights.len();
        let weight_sum = weights.iter().sum();
        TenantLedger {
            weights,
            weight_sum,
            total_map_slots: total_map_slots.max(1),
            total_reduce_slots: total_reduce_slots.max(1),
            steady_after,
            last_observed: None,
            usage_maps: vec![0; n],
            usage_reduces: vec![0; n],
            demand_maps: vec![0; n],
            demand_reduces: vec![0; n],
            steady_secs: 0.0,
            share_secs: vec![0.0; n],
            contended_secs: vec![0.0; n],
            excess_secs: vec![0.0; n],
            starved_since: vec![None; n],
        }
    }

    /// Number of tenants tracked.
    pub fn tenants(&self) -> usize {
        self.weights.len()
    }

    /// The tenant a job is charged to, clamping out-of-range ids to the
    /// last tenant so a mis-tagged workload cannot panic the ledger.
    pub fn tenant_of(&self, tenant: u32) -> usize {
        (tenant as usize).min(self.weights.len() - 1)
    }

    /// A tenant's quota: `weight / Σ weights`.
    pub fn quota(&self, tenant: usize) -> f64 {
        self.weights[tenant] / self.weight_sum
    }

    /// Map slots the quota entitles `tenant` to (rounded down, min 0).
    pub fn quota_map_slots(&self, tenant: usize) -> u32 {
        (self.quota(tenant) * f64::from(self.total_map_slots)).floor() as u32
    }

    /// Reduce slots the quota entitles `tenant` to.
    pub fn quota_reduce_slots(&self, tenant: usize) -> u32 {
        (self.quota(tenant) * f64::from(self.total_reduce_slots)).floor() as u32
    }

    /// Map slots `tenant` occupied at the last observation.
    pub fn usage_maps(&self, tenant: usize) -> u32 {
        self.usage_maps[tenant]
    }

    /// Reduce slots `tenant` occupied at the last observation.
    pub fn usage_reduces(&self, tenant: usize) -> u32 {
        self.usage_reduces[tenant]
    }

    /// Schedulable map tasks `tenant` had pending at the last observation.
    pub fn demand_maps(&self, tenant: usize) -> u32 {
        self.demand_maps[tenant]
    }

    /// Schedulable reduce tasks `tenant` had pending at the last
    /// observation.
    pub fn demand_reduces(&self, tenant: usize) -> u32 {
        self.demand_reduces[tenant]
    }

    /// True when `tenant` had unmet demand at the last observation: pending
    /// work of a kind it is below quota for.
    pub fn starved(&self, tenant: usize) -> bool {
        (self.demand_maps[tenant] > 0 && self.usage_maps[tenant] < self.quota_map_slots(tenant))
            || (self.demand_reduces[tenant] > 0
                && self.usage_reduces[tenant] < self.quota_reduce_slots(tenant))
    }

    /// A tenant's dominant share at the last observation: the larger of its
    /// map-slot and reduce-slot usage fractions.
    pub fn dominant_share(&self, tenant: usize) -> f64 {
        let maps = f64::from(self.usage_maps[tenant]) / f64::from(self.total_map_slots);
        let reduces = f64::from(self.usage_reduces[tenant]) / f64::from(self.total_reduce_slots);
        maps.max(reduces)
    }

    /// Takes a snapshot of per-tenant usage and demand from `ctx`,
    /// integrating the *previous* snapshot over the elapsed simulated time
    /// first (piecewise-constant integration, so calling it on every
    /// scheduling round is exact, not sampled).
    pub fn observe(&mut self, ctx: &SchedulerContext<'_>) {
        if let Some(last) = self.last_observed {
            if ctx.now > last {
                let overlap_start = last.max(self.steady_after);
                if ctx.now > overlap_start {
                    let dt = (ctx.now - overlap_start).as_secs_f64();
                    self.steady_secs += dt;
                    // Contention begins `STARVATION_GRACE` after a tenant's
                    // starvation does, so a starved tenant `s` contends over
                    // the suffix `[starved_since[s] + grace, now]` of this
                    // interval. Track the earliest such start and its
                    // holder (plus the runner-up) so each tenant can take
                    // the minimum over the *other* tenants without
                    // allocating.
                    let mut best: Option<(SimTime, usize)> = None;
                    let mut second: Option<SimTime> = None;
                    for s in 0..self.tenants() {
                        let Some(since) = self.starved_since[s] else {
                            continue;
                        };
                        let from = (since + STARVATION_GRACE).max(overlap_start);
                        match best {
                            None => best = Some((from, s)),
                            Some((b, _)) if from < b => {
                                second = Some(b);
                                best = Some((from, s));
                            }
                            Some(_) => {
                                if second.is_none_or(|sc| from < sc) {
                                    second = Some(from);
                                }
                            }
                        }
                    }
                    for t in 0..self.tenants() {
                        let share = self.dominant_share(t);
                        self.share_secs[t] += share * dt;
                        let other_from = match best {
                            Some((_, holder)) if holder == t => second,
                            Some((from, _)) => Some(from),
                            None => None,
                        };
                        if let Some(from) = other_from {
                            if ctx.now > from {
                                let dt_c = (ctx.now - from).as_secs_f64();
                                self.contended_secs[t] += dt_c;
                                self.excess_secs[t] += (share - self.quota(t)).max(0.0) * dt_c;
                            }
                        }
                    }
                }
            }
        }
        self.last_observed = Some(ctx.now);

        self.usage_maps.fill(0);
        self.usage_reduces.fill(0);
        self.demand_maps.fill(0);
        self.demand_reduces.fill(0);
        for job in ctx.jobs.values() {
            if job.is_finished() || job.spec.best_effort {
                continue;
            }
            let t = self.tenant_of(job.spec.tenant);
            self.demand_maps[t] += job.schedulable_maps;
            self.demand_reduces[t] += job.schedulable_reduces;
        }
        for view in ctx.nodes {
            for tid in &view.running {
                let Some(job) = ctx.jobs.get(&tid.job) else {
                    continue;
                };
                if job.spec.best_effort {
                    continue;
                }
                let t = self.tenant_of(job.spec.tenant);
                match tid.kind {
                    TaskKind::Map => self.usage_maps[t] += 1,
                    TaskKind::Reduce => self.usage_reduces[t] += 1,
                }
            }
        }
        for t in 0..self.tenants() {
            if self.starved(t) {
                self.starved_since[t].get_or_insert(ctx.now);
            } else {
                self.starved_since[t] = None;
            }
        }
    }

    /// Time-weighted mean of `max(0, dominant_share - quota)` for `tenant`
    /// over steady-state time where another tenant had unmet demand past
    /// the reclaim grace period. Zero when no such time was observed.
    pub fn mean_excess_over_quota(&self, tenant: usize) -> f64 {
        if self.contended_secs[tenant] > 0.0 {
            self.excess_secs[tenant] / self.contended_secs[tenant]
        } else {
            0.0
        }
    }

    /// End-of-run per-tenant summary, in tenant order.
    pub fn summary(&self) -> Vec<TenantShareStats> {
        (0..self.tenants())
            .map(|t| TenantShareStats {
                tenant: t as u32,
                quota: self.quota(t),
                mean_dominant_share: if self.steady_secs > 0.0 {
                    self.share_secs[t] / self.steady_secs
                } else {
                    0.0
                },
                mean_excess_over_quota: self.mean_excess_over_quota(t),
                final_dominant_share: self.dominant_share(t),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobRuntime, JobSpec, JobTable, TaskRuntime, TaskState};
    use crate::scheduler::{NodeView, PendingTotals};
    use crate::SpeculationConfig;
    use mrp_dfs::Topology;

    fn make_job(id: u32, tenant: u32, best_effort: bool, maps: u32, running: u32) -> JobRuntime {
        let mut spec = JobSpec::synthetic(format!("j{id}"), maps, 1024).with_tenant(tenant);
        if best_effort {
            spec = spec.with_best_effort();
        }
        let mut tasks: Vec<TaskRuntime> = (0..maps)
            .map(|i| {
                TaskRuntime::new(
                    TaskId {
                        job: JobId(id),
                        kind: TaskKind::Map,
                        index: i,
                    },
                    1024,
                    vec![],
                )
            })
            .collect();
        for t in tasks.iter_mut().take(running as usize) {
            t.set_state(TaskState::Running);
            t.node = Some(NodeId(0));
        }
        let mut job = JobRuntime {
            id: JobId(id),
            spec,
            submitted_at: SimTime::ZERO,
            completed_at: None,
            tasks,
            schedulable_maps: 0,
            schedulable_reduces: 0,
            suspended_count: 0,
            occupying_count: 0,
            speculative_live: 0,
        };
        job.recount_task_states();
        job
    }

    fn ctx_at<'a>(
        now: SimTime,
        jobs: &'a JobTable,
        nodes: &'a [NodeView],
        topology: &'a Topology,
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            now,
            jobs,
            nodes,
            racks: &[],
            topology,
            totals: PendingTotals::from_jobs(jobs),
            speculation: SpeculationConfig::default(),
            delay: None,
            shuffle: None,
            reliability: None,
        }
    }

    fn running_view(jobs: &JobTable) -> NodeView {
        let mut running = Vec::new();
        for job in jobs.values() {
            for t in &job.tasks {
                if t.state == TaskState::Running {
                    running.push(t.id);
                }
            }
        }
        NodeView {
            id: NodeId(0),
            free_map_slots: 0,
            free_reduce_slots: 0,
            running,
            suspended: vec![],
        }
    }

    #[test]
    fn quotas_follow_weights() {
        let ledger = TenantLedger::new(vec![1.0, 1.0, 2.0], 8, 4, SimTime::ZERO);
        assert_eq!(ledger.tenants(), 3);
        assert!((ledger.quota(0) - 0.25).abs() < 1e-12);
        assert!((ledger.quota(2) - 0.5).abs() < 1e-12);
        assert_eq!(ledger.quota_map_slots(2), 4);
        assert_eq!(ledger.quota_reduce_slots(2), 2);
        // Out-of-range tenant tags clamp instead of panicking.
        assert_eq!(ledger.tenant_of(17), 2);
    }

    #[test]
    fn excess_accrues_only_under_contention() {
        let topology = Topology::single_rack(1);
        let mut ledger = TenantLedger::new(vec![1.0, 1.0], 4, 1, SimTime::ZERO);

        // Tenant 0 uses the whole cluster; tenant 1 has no demand yet.
        let mut jobs = JobTable::new();
        jobs.insert(JobId(1), make_job(1, 0, false, 4, 4));
        let nodes = vec![running_view(&jobs)];
        ledger.observe(&ctx_at(SimTime::ZERO, &jobs, &nodes, &topology));
        ledger.observe(&ctx_at(SimTime::from_secs(100), &jobs, &nodes, &topology));
        assert!((ledger.dominant_share(0) - 1.0).abs() < 1e-12);
        // Nobody else was starved: work conservation, not unfairness.
        assert_eq!(ledger.mean_excess_over_quota(0), 0.0);

        // Tenant 1 arrives with pending work it cannot place.
        jobs.insert(JobId(2), make_job(2, 1, false, 4, 0));
        ledger.observe(&ctx_at(SimTime::from_secs(100), &jobs, &nodes, &topology));
        assert!(ledger.starved(1));
        ledger.observe(&ctx_at(SimTime::from_secs(200), &jobs, &nodes, &topology));
        // 100s uncontended at share 1.0 + 100s contended at excess 0.5.
        assert!((ledger.mean_excess_over_quota(0) - 0.5).abs() < 1e-12);
        let stats = ledger.summary();
        assert_eq!(stats.len(), 2);
        assert!((stats[0].mean_dominant_share - 1.0).abs() < 1e-12);
        assert_eq!(stats[1].mean_excess_over_quota, 0.0);
    }

    #[test]
    fn best_effort_jobs_are_invisible() {
        let topology = Topology::single_rack(1);
        let mut ledger = TenantLedger::new(vec![1.0, 1.0], 4, 1, SimTime::ZERO);
        let mut jobs = JobTable::new();
        jobs.insert(JobId(1), make_job(1, 0, true, 4, 2));
        let nodes = vec![running_view(&jobs)];
        ledger.observe(&ctx_at(SimTime::ZERO, &jobs, &nodes, &topology));
        assert_eq!(ledger.usage_maps(0), 0);
        assert_eq!(ledger.demand_maps(0), 0);
        assert!(!ledger.starved(0));
    }

    #[test]
    fn warmup_time_is_excluded() {
        let topology = Topology::single_rack(1);
        let mut ledger = TenantLedger::new(vec![1.0, 1.0], 4, 1, SimTime::from_secs(50));
        let mut jobs = JobTable::new();
        jobs.insert(JobId(1), make_job(1, 0, false, 4, 4));
        jobs.insert(JobId(2), make_job(2, 1, false, 4, 0));
        let nodes = vec![running_view(&jobs)];
        ledger.observe(&ctx_at(SimTime::ZERO, &jobs, &nodes, &topology));
        ledger.observe(&ctx_at(SimTime::from_secs(100), &jobs, &nodes, &topology));
        // Only the 50s past steady_after count.
        assert!((ledger.steady_secs - 50.0).abs() < 1e-12);
        assert!((ledger.mean_excess_over_quota(0) - 0.5).abs() < 1e-12);
    }
}
