//! Metrics primitives for the observability layer: a registry of named
//! counters, gauges and log-bucketed histograms with cheap handle-based
//! recording, plus a virtual-time [`TimeSeriesSampler`].
//!
//! Hot paths register a metric once (a linear name lookup, amortised to
//! nothing) and then record through a copyable integer handle — no string
//! hashing per event. Everything here is plain in-memory state: the
//! simulation engine owns a registry per cluster and higher layers decide
//! when to snapshot or export it, so recording never perturbs simulation
//! state and a run with metrics enabled stays bit-identical to one without.
//!
//! ```
//! use mrp_sim::{MetricsRegistry, SimDuration, SimTime, TimeSeriesSampler};
//!
//! let mut reg = MetricsRegistry::new();
//! let launches = reg.counter("tasks_launched");
//! reg.inc(launches, 3);
//! assert_eq!(reg.counter_value("tasks_launched"), Some(3));
//!
//! let lat = reg.histogram("suspend_latency_us");
//! reg.observe(lat, 1_500);
//! assert_eq!(reg.histogram_stats("suspend_latency_us").unwrap().count, 1);
//!
//! let mut sampler = TimeSeriesSampler::new(
//!     SimDuration::from_secs(10),
//!     vec!["pending".to_string()],
//! );
//! assert!(sampler.due(SimTime::ZERO));
//! sampler.record(SimTime::ZERO, vec![7]);
//! assert!(!sampler.due(SimTime::from_secs(5)));
//! assert!(sampler.due(SimTime::from_secs(10)));
//! ```

use crate::{SimDuration, SimTime};

/// Handle to a counter registered in a [`MetricsRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a gauge registered in a [`MetricsRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a histogram registered in a [`MetricsRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(u32);

/// A histogram over `u64` samples with power-of-two ("log2") buckets.
///
/// Bucket `i` holds samples whose bit length is `i` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2..=3, bucket 3 holds 4..=7,
/// ...). Recording is two array ops; the trade-off is that percentiles are
/// reported as the upper bound of the bucket that crosses the rank, i.e.
/// within a factor of two of the true value — plenty for latency-shaped
/// distributions spanning many orders of magnitude.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    /// Number of recorded samples.
    pub count: u64,
    /// Saturating sum of all recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`0.0..=100.0`), or `None` when the histogram is empty.
    ///
    /// The true percentile lies within a factor of two below the returned
    /// bound (exact for buckets 0 and 1).
    pub fn percentile_bound(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                });
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = match i {
                0 => (0, 0),
                64 => (1u64 << 63, u64::MAX),
                _ => (1u64 << (i - 1), (1u64 << i) - 1),
            };
            out.push((lo, hi, n));
        }
        out
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Names are looked up only at registration time; recording goes through
/// the returned copyable handles. Registering the same name twice returns
/// the same handle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, LogHistogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i as u32);
        }
        self.counters.push((name.to_string(), 0));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Increment a counter by `by`.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0 as usize].1 += by;
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i as u32);
        }
        self.gauges.push((name.to_string(), 0));
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0 as usize].1 = value;
    }

    /// Adjust a gauge by a signed delta.
    pub fn add_gauge(&mut self, id: GaugeId, delta: i64) {
        self.gauges[id.0 as usize].1 += delta;
    }

    /// Register (or look up) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i as u32);
        }
        self.histograms
            .push((name.to_string(), LogHistogram::new()));
        HistogramId((self.histograms.len() - 1) as u32)
    }

    /// Record a sample into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0 as usize].1.record(value);
    }

    /// Current value of a counter by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Current value of a gauge by name.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Stats for a histogram by name.
    pub fn histogram_stats(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// All counters as `(name, value)` pairs, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All gauges as `(name, value)` pairs, in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All histograms as `(name, histogram)` pairs, in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }
}

/// One sampled row of a [`TimeSeriesSampler`]: a virtual timestamp plus one
/// value per configured column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesRow {
    /// Virtual time at which the row was sampled.
    pub at: SimTime,
    /// One value per column, in column order.
    pub values: Vec<u64>,
}

/// Snapshots a fixed set of columns on a virtual-time cadence.
///
/// The sampler never schedules anything: the owner polls [`due`] from its
/// event loop and calls [`record`] with the current values when a sampling
/// deadline has passed. Deadlines advance on a fixed grid
/// (`0, interval, 2*interval, ...`); when the simulation jumps over several
/// grid points between events, one row is recorded at the current time and
/// the missed points are skipped rather than back-filled.
///
/// [`due`]: TimeSeriesSampler::due
/// [`record`]: TimeSeriesSampler::record
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeriesSampler {
    interval: SimDuration,
    next: SimTime,
    columns: Vec<String>,
    rows: Vec<SeriesRow>,
}

impl TimeSeriesSampler {
    /// A sampler with the given cadence and column names. `interval` must be
    /// non-zero.
    pub fn new(interval: SimDuration, columns: Vec<String>) -> Self {
        assert!(
            interval > SimDuration::ZERO,
            "sampler interval must be non-zero"
        );
        TimeSeriesSampler {
            interval,
            next: SimTime::ZERO,
            columns,
            rows: Vec::new(),
        }
    }

    /// Whether a sampling deadline has been reached at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next
    }

    /// Record one row at `now` and advance the deadline past `now`.
    ///
    /// `values` must have one entry per column.
    pub fn record(&mut self, now: SimTime, values: Vec<u64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push(SeriesRow { at: now, values });
        while self.next <= now {
            self.next += self.interval;
        }
    }

    /// Column names, in value order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// All recorded rows, oldest first.
    pub fn rows(&self) -> &[SeriesRow] {
        &self.rows
    }

    /// Sampling cadence.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 9);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        let buckets = h.nonzero_buckets();
        // 0 | 1 | 2..=3 (x2) | 4..=7 (x2) | 8..=15 | 512..=1023 | 1024..=2047
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (512, 1023, 1),
                (1024, 2047, 1),
            ]
        );
        // The p50 rank (5th of 9) falls in the 4..=7 bucket.
        assert_eq!(h.percentile_bound(50.0), Some(7));
        assert_eq!(h.percentile_bound(100.0), Some(2047));
        assert_eq!(h.percentile_bound(0.0), Some(0));
    }

    #[test]
    fn registry_handles_are_stable_and_deduplicated() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("a");
        let b = reg.counter("b");
        assert_eq!(reg.counter("a"), a);
        reg.inc(a, 2);
        reg.inc(b, 5);
        reg.inc(a, 1);
        assert_eq!(reg.counter_value("a"), Some(3));
        assert_eq!(reg.counter_value("b"), Some(5));
        assert_eq!(reg.counter_value("missing"), None);

        let g = reg.gauge("g");
        reg.set_gauge(g, 10);
        reg.add_gauge(g, -3);
        assert_eq!(reg.gauge_value("g"), Some(7));
    }

    #[test]
    fn sampler_grid_skips_missed_points() {
        let mut s = TimeSeriesSampler::new(SimDuration::from_secs(10), vec!["x".into()]);
        assert!(s.due(SimTime::ZERO));
        s.record(SimTime::ZERO, vec![1]);
        assert!(!s.due(SimTime::from_secs(9)));
        // Jump over three grid points: one row, deadline lands after `now`.
        assert!(s.due(SimTime::from_secs(35)));
        s.record(SimTime::from_secs(35), vec![2]);
        assert!(!s.due(SimTime::from_secs(39)));
        assert!(s.due(SimTime::from_secs(40)));
        assert_eq!(s.rows().len(), 2);
    }
}
