//! Small statistics helpers used by the experiment harness.
//!
//! The paper reports averages over 20 runs and notes that min/max stay within
//! 5% of the mean; [`Summary`] captures exactly those quantities.

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of observations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample standard deviation (zero when fewer than two observations).
    pub std_dev: f64,
}

impl Summary {
    /// Summarises a slice of observations.
    ///
    /// Returns `None` for an empty slice — an experiment with no runs has no
    /// meaningful summary and callers must handle that explicitly.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let std_dev = if count > 1 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        Some(Summary {
            count,
            mean,
            min,
            max,
            std_dev,
        })
    }

    /// Half-width of the min–max band, relative to the mean (the paper's
    /// "within 5% of the average" check).
    pub fn relative_spread(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            ((self.max - self.min) / 2.0) / self.mean.abs()
        }
    }
}

/// Streaming mean/min/max accumulator (Welford's algorithm) for metrics that
/// are produced one observation at a time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean of the observations so far (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Converts the accumulator into a [`Summary`], or `None` if empty.
    pub fn summary(&self) -> Option<Summary> {
        if self.count == 0 {
            return None;
        }
        let std_dev = if self.count > 1 {
            (self.m2 / (self.count - 1) as f64).sqrt()
        } else {
            0.0
        };
        Some(Summary {
            count: self.count,
            mean: self.mean,
            min: self.min,
            max: self.max,
            std_dev,
        })
    }
}

/// Computes the `p`-th percentile (0–100) of a data set using linear
/// interpolation between closest ranks. Returns `None` on empty input.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.std_dev - 2.138).abs() < 0.01);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn relative_spread_matches_paper_check() {
        let s = Summary::of(&[95.0, 100.0, 105.0]).unwrap();
        assert!((s.relative_spread() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn online_matches_batch() {
        let data = [1.0, 2.0, 3.5, 8.0, 13.0, 21.5];
        let mut o = OnlineStats::new();
        for v in data {
            o.push(v);
        }
        let batch = Summary::of(&data).unwrap();
        let online = o.summary().unwrap();
        assert_eq!(online.count, batch.count);
        assert!((online.mean - batch.mean).abs() < 1e-9);
        assert!((online.std_dev - batch.std_dev).abs() < 1e-9);
        assert_eq!(online.min, batch.min);
        assert_eq!(online.max, batch.max);
    }

    #[test]
    fn online_empty() {
        let o = OnlineStats::new();
        assert_eq!(o.count(), 0);
        assert_eq!(o.mean(), 0.0);
        assert!(o.summary().is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let data = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&data, 0.0), Some(15.0));
        assert_eq!(percentile(&data, 100.0), Some(50.0));
        assert!((percentile(&data, 50.0).unwrap() - 35.0).abs() < 1e-9);
        assert!(percentile(&[], 50.0).is_none());
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }
}
