//! A priority queue of timestamped events.
//!
//! The queue is generic over the event payload so that every layer of the
//! stack (the OS model, the MapReduce engine, the experiment driver) can use
//! its own event type while sharing the same deterministic ordering rules:
//! events fire in timestamp order, and events with equal timestamps fire in
//! insertion order (FIFO), which keeps simulations reproducible.
//!
//! # Cancellation design
//!
//! Cancellation is slab/generation based rather than tombstone based. Every
//! scheduled event owns a slot in a slab; the slot records a generation
//! counter and a liveness bit, and the [`EventId`] handed to the caller packs
//! `(slot, generation)`. Cancelling flips the liveness bit (O(1)); the heap
//! entry is discarded lazily when it surfaces, at which point the slot's
//! generation is bumped and the slot is recycled. Consequences:
//!
//! * `cancel()` of an id whose event already fired (or whose slot was
//!   recycled) is a guaranteed no-op — the generation no longer matches, so
//!   nothing leaks and nothing is mis-cancelled;
//! * [`EventQueue::len`] is an exact counter maintained on schedule / cancel /
//!   pop, never an approximation derived from tombstone bookkeeping;
//! * memory for cancelled events is reclaimed as the heap drains, and slots
//!   are reused, so long-running simulations with heavy cancellation churn
//!   (suspend/resume preemption cancels a timer per preemption) stay compact.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle that identifies a scheduled event so it can be cancelled.
///
/// Internally packs a slab slot index and that slot's generation at scheduling
/// time; a stale handle (fired or recycled event) can never affect a newer
/// event that happens to reuse the same slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn new(slot: u32, gen: u32) -> Self {
        EventId(u64::from(slot) | (u64::from(gen) << 32))
    }

    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One slab slot: the current generation and whether the event that owns the
/// slot is still pending.
#[derive(Clone, Copy, Debug)]
struct Slot {
    generation: u32,
    live: bool,
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable event queue keyed by [`SimTime`].
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    next_seq: u64,
    pending: usize,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            next_seq: 0,
            pending: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue sized for roughly `capacity` in-flight events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free_slots: Vec::new(),
            next_seq: 0,
            pending: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the last popped event, or
    /// zero if nothing has been popped yet.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `t` without popping anything. Drivers that merge
    /// this queue with computed event sources (e.g. the engine's periodic
    /// heartbeat wheel) use this so `schedule`'s not-in-the-past invariant
    /// keeps holding across events the queue never saw.
    ///
    /// # Panics
    /// Panics if `t` is before [`Self::now`].
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "cannot rewind the clock to {t:?} from {:?}",
            self.now
        );
        self.now = t;
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before [`Self::now`]); scheduling in the
    /// past would silently reorder history and is always a logic error.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at:?} before the current time {:?}",
            self.now
        );
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                let entry = &mut self.slots[slot as usize];
                debug_assert!(!entry.live, "free slot must not be live");
                entry.live = true;
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    live: true,
                });
                slot
            }
        };
        let generation = self.slots[slot as usize].generation;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            slot,
            payload,
        });
        self.pending += 1;
        EventId::new(slot, generation)
    }

    /// Cancels a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a no-op: the generation encoded in
    /// the id no longer matches the slot, so the handle is simply stale.
    pub fn cancel(&mut self, id: EventId) {
        if let Some(slot) = self.slots.get_mut(id.slot() as usize) {
            if slot.live && slot.generation == id.generation() {
                slot.live = false;
                self.pending -= 1;
            }
        }
    }

    /// Recycles the slot of a heap entry that has just been removed from the
    /// heap. Returns whether the event was still live (not cancelled).
    #[inline]
    fn retire_slot(&mut self, slot: u32) -> bool {
        let entry = &mut self.slots[slot as usize];
        let was_live = entry.live;
        entry.live = false;
        entry.generation = entry.generation.wrapping_add(1);
        self.free_slots.push(slot);
        was_live
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Cancelled events are skipped silently.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            let live = self.retire_slot(ev.slot);
            if live {
                self.pending -= 1;
                self.now = ev.at;
                return Some((ev.at, ev.payload));
            }
        }
        None
    }

    /// The timestamp of the next (non-cancelled) event, if any. Does not
    /// advance the clock.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled events lazily so peek is accurate.
        while let Some(ev) = self.heap.peek() {
            if self.slots[ev.slot as usize].live {
                return Some(ev.at);
            }
            let ev = self.heap.pop().expect("peeked event must exist");
            self.retire_slot(ev.slot);
        }
        None
    }

    /// Number of pending (non-cancelled) events. Exact: maintained as a
    /// counter across schedule, cancel and pop, with no tombstone drift.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_does_not_undercount_len() {
        // Regression test: the old tombstone design left a permanent entry in
        // the cancelled set when an already-fired id was cancelled, making
        // len() report fewer pending events than actually existed.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        q.cancel(a); // stale id: must not affect anything
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        assert_eq!(q.len(), 2, "len must count both pending events");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn stale_id_cannot_cancel_a_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        // The next schedule reuses slot 0 with a bumped generation.
        let b = q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a); // stale handle into the reused slot
        assert_eq!(q.len(), 1, "the stale cancel must not kill the new event");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        q.cancel(b); // now b itself is stale too: no-op
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_counted_once() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn peek_respects_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5)
            .map(|i| q.schedule(SimTime::from_secs(i + 1), i))
            .collect();
        q.cancel(ids[0]);
        q.cancel(ids[3]);
        assert_eq!(q.len(), 3);
        let _ = SimDuration::ZERO; // keep the import exercised
    }

    #[test]
    fn slots_are_recycled_under_churn() {
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            let id = q.schedule(SimTime::from_secs(round + 1), round);
            if round % 2 == 0 {
                q.cancel(id);
            } else {
                q.pop();
            }
        }
        assert!(
            q.slots.len() < 16,
            "slab must stay compact under schedule/cancel churn, got {} slots",
            q.slots.len()
        );
    }
}
