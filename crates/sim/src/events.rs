//! A priority queue of timestamped events.
//!
//! The queue is generic over the event payload so that every layer of the
//! stack (the OS model, the MapReduce engine, the experiment driver) can use
//! its own event type while sharing the same deterministic ordering rules:
//! events fire in timestamp order, and events with equal timestamps fire in
//! insertion order (FIFO), which keeps simulations reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle that identifies a scheduled event so it can be cancelled.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable event queue keyed by [`SimTime`].
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    next_id: u64,
    cancelled: std::collections::HashSet<EventId>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_id: 0,
            cancelled: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the last popped event, or
    /// zero if nothing has been popped yet.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before [`Self::now`]); scheduling in the
    /// past would silently reorder history and is always a logic error.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at:?} before the current time {:?}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, id, payload });
        id
    }

    /// Cancels a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Cancelled events are skipped silently.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            self.now = ev.at;
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// The timestamp of the next (non-cancelled) event, if any. Does not
    /// advance the clock.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled events lazily so peek is accurate.
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.id) {
                let ev = self.heap.pop().expect("peeked event must exist");
                self.cancelled.remove(&ev.id);
            } else {
                return Some(ev.at);
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_respects_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5)
            .map(|i| q.schedule(SimTime::from_secs(i + 1), i))
            .collect();
        q.cancel(ids[0]);
        q.cancel(ids[3]);
        assert_eq!(q.len(), 3);
        let _ = SimDuration::ZERO; // keep the import exercised
    }
}
