//! Deterministic random number generation for simulations.
//!
//! Every experiment run is seeded explicitly so results are reproducible; the
//! experiment harness derives per-repetition seeds from a base seed, exactly
//! like the paper repeats each configuration 20 times.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded, reproducible random number generator.
///
/// Wraps ChaCha8 which is fast, portable and has a stable output stream across
/// platforms, so golden-value tests do not depend on the host architecture.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// subsystems (e.g. workload generation vs. placement decisions) so adding
    /// randomness in one place does not perturb the others.
    pub fn derive(&self, stream: u64) -> SimRng {
        SimRng::new(self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Samples uniformly from a range.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Samples a uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` of returning true.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples from an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Samples from a (truncated at zero) normal distribution using the
    /// Box-Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0);
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + std_dev * z).max(0.0)
    }

    /// Samples from a bounded Pareto distribution (shape `alpha`, bounds
    /// `[lo, hi]`), the classic heavy-tailed model for MapReduce job sizes.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u: f64 = self.inner.gen_range(0.0..1.0);
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Picks a uniformly random element of a slice, or `None` if it is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.inner.gen_range(0..items.len());
            Some(&items[idx])
        }
    }

    /// Fisher–Yates shuffle of a mutable slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn derived_streams_are_independent_but_deterministic() {
        let base = SimRng::new(7);
        let mut c1 = base.derive(1);
        let mut c2 = base.derive(1);
        let mut c3 = base.derive(2);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn unit_and_chance_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let empirical = total / n as f64;
        assert!((empirical - mean).abs() < 0.25, "empirical mean {empirical}");
    }

    #[test]
    fn normal_is_truncated_at_zero() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            assert!(r.normal(1.0, 5.0) >= 0.0);
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut r = SimRng::new(17);
        for _ in 0..5000 {
            let x = r.bounded_pareto(1.1, 1.0, 1000.0);
            assert!(
                (1.0..=1000.0 + 1e-6).contains(&x),
                "sample {x} escaped the bounds"
            );
        }
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::new(19);
        let empty: [u32; 0] = [];
        assert!(r.pick(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.pick(&items).unwrap()));
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "shuffle of 100 elements should not be identity");
    }
}
