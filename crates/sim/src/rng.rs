//! Deterministic random number generation for simulations.
//!
//! Every experiment run is seeded explicitly so results are reproducible; the
//! experiment harness derives per-repetition seeds from a base seed, exactly
//! like the paper repeats each configuration 20 times.
//!
//! The generator is a self-contained xoshiro256++ seeded through SplitMix64.
//! It has a stable output stream across platforms and Rust versions (no
//! external crates, no hash randomisation), so golden-value tests do not
//! depend on the host.

/// A seeded, reproducible random number generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state, seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// subsystems (e.g. workload generation vs. placement decisions) so adding
    /// randomness in one place does not perturb the others.
    pub fn derive(&self, stream: u64) -> SimRng {
        SimRng::new(self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        // Lemire-style widening multiply avoids modulo bias for all practical
        // range sizes while staying branch-light on the hot path.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Samples a uniform value in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high-quality bits map exactly onto the f64 mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` of returning true.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Samples from an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        // 1 - unit() lies in (0, 1], so the logarithm is always finite.
        -mean * (1.0 - self.unit()).ln()
    }

    /// Samples from a (truncated at zero) normal distribution using the
    /// Box-Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0);
        let u1 = 1.0 - self.unit(); // (0, 1]
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + std_dev * z).max(0.0)
    }

    /// Samples from a bounded Pareto distribution (shape `alpha`, bounds
    /// `[lo, hi]`), the classic heavy-tailed model for MapReduce job sizes.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.unit();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Picks a uniformly random element of a slice, or `None` if it is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.index(items.len());
            Some(&items[idx])
        }
    }

    /// Fisher–Yates shuffle of a mutable slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn derived_streams_are_independent_but_deterministic() {
        let base = SimRng::new(7);
        let mut c1 = base.derive(1);
        let mut c2 = base.derive(1);
        let mut c3 = base.derive(2);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn unit_and_chance_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn index_is_in_range_and_covers_the_range() {
        let mut r = SimRng::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let i = r.index(8);
            seen[i] = true;
        }
        assert!(
            seen.iter().all(|s| *s),
            "all indices should occur: {seen:?}"
        );
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let empirical = total / n as f64;
        assert!(
            (empirical - mean).abs() < 0.25,
            "empirical mean {empirical}"
        );
    }

    #[test]
    fn normal_is_truncated_at_zero() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            assert!(r.normal(1.0, 5.0) >= 0.0);
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut r = SimRng::new(17);
        for _ in 0..5000 {
            let x = r.bounded_pareto(1.1, 1.0, 1000.0);
            assert!(
                (1.0..=1000.0 + 1e-6).contains(&x),
                "sample {x} escaped the bounds"
            );
        }
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::new(19);
        let empty: [u32; 0] = [];
        assert!(r.pick(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.pick(&items).unwrap()));
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "shuffle of 100 elements should not be identity");
    }
}
