//! Virtual time for the discrete-event simulation.
//!
//! All simulated components share a single virtual clock. Time is represented
//! with microsecond resolution as an unsigned 64-bit counter, which is enough
//! for ~584,000 years of simulated time — far beyond any MapReduce workload.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation's virtual clock, in microseconds since the
/// beginning of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds since simulation start.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "simulation time cannot be negative");
        SimTime((s * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "durations must be finite and non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative scalar.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0 && k.is_finite());
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(5);
        assert_eq!(t + d, SimTime::from_secs(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(t.duration_since(t + d), SimDuration::ZERO);
        let mut u = t;
        u += d;
        assert_eq!(u, SimTime::from_secs(15));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
