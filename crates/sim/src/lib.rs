//! # mrp-sim — discrete-event simulation kernel
//!
//! The foundation shared by every simulated substrate in the
//! `hadoop-os-preempt` workspace: a virtual clock ([`SimTime`] /
//! [`SimDuration`]), a deterministic cancellable event queue
//! ([`EventQueue`]), a seeded random number generator ([`SimRng`]), the
//! statistics helpers ([`Summary`], [`OnlineStats`]) used by the experiment
//! harness to reproduce the paper's figures, and the observability
//! primitives ([`MetricsRegistry`], [`TimeSeriesSampler`], [`LoopProfiler`])
//! that the engine threads through its event loop.
//!
//! Determinism is a design goal throughout: same seed, same configuration ⇒
//! bit-identical simulation, which makes the reproduction of the paper's
//! figures and the golden-shape integration tests stable.
//!
//! ```
//! use mrp_sim::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_secs(3), "heartbeat");
//! queue.schedule(SimTime::from_secs(1), "task-finished");
//! assert_eq!(queue.pop(), Some((SimTime::from_secs(1), "task-finished")));
//! assert_eq!(queue.now(), SimTime::from_secs(1));
//! ```

#![warn(missing_docs)]

mod events;
mod metrics;
mod profile;
mod rng;
mod stats;
mod time;

pub use events::{EventId, EventQueue};
pub use metrics::{
    CounterId, GaugeId, HistogramId, LogHistogram, MetricsRegistry, SeriesRow, TimeSeriesSampler,
};
pub use profile::{LoopProfiler, ProfileReport, ProfileRow, ACTION_SAMPLE_EVERY};
pub use rng::SimRng;
pub use stats::{percentile, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};

/// Number of bytes in one mebibyte; sizes throughout the workspace are plain
/// `u64` byte counts and these constants keep call sites readable.
pub const MIB: u64 = 1024 * 1024;
/// Number of bytes in one gibibyte.
pub const GIB: u64 = 1024 * MIB;

#[cfg(test)]
mod randomized_tests {
    //! Property-style tests driven by the crate's own seeded generator (the
    //! container has no proptest): each test runs many randomized cases from
    //! fixed seeds, so failures are reproducible by construction.

    use super::*;

    /// Reference implementation of the queue's ordering contract: a sorted
    /// vector popped front-first, with (timestamp, insertion sequence) order
    /// and eager removal on cancellation.
    struct NaiveQueue<E> {
        entries: Vec<(SimTime, u64, u64, E)>, // (at, seq, id, payload)
        next_seq: u64,
        next_id: u64,
    }

    impl<E> NaiveQueue<E> {
        fn new() -> Self {
            NaiveQueue {
                entries: Vec::new(),
                next_seq: 0,
                next_id: 0,
            }
        }

        fn schedule(&mut self, at: SimTime, payload: E) -> u64 {
            let id = self.next_id;
            self.next_id += 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.entries.push((at, seq, id, payload));
            id
        }

        fn cancel(&mut self, id: u64) {
            self.entries.retain(|(_, _, eid, _)| *eid != id);
        }

        fn pop(&mut self) -> Option<(SimTime, E)> {
            if self.entries.is_empty() {
                return None;
            }
            let best = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (at, seq, _, _))| (*at, *seq))
                .map(|(i, _)| i)
                .expect("non-empty");
            let (at, _, _, payload) = self.entries.remove(best);
            Some((at, payload))
        }

        fn len(&self) -> usize {
            self.entries.len()
        }
    }

    /// The event queue produces the identical pop order (timestamp, then
    /// FIFO) as the naive sorted-vec reference across randomized
    /// schedule/cancel/pop interleavings, and its `len()` stays exact.
    #[test]
    fn queue_matches_naive_reference_under_random_interleavings() {
        for case in 0..200u64 {
            let mut rng = SimRng::new(0xE7E7 + case);
            let mut fast = EventQueue::new();
            let mut naive = NaiveQueue::new();
            // Live ids, kept in lockstep between the two implementations.
            let mut live: Vec<(EventId, u64)> = Vec::new();
            let mut floor = SimTime::ZERO;
            let ops = 50 + rng.index(150);
            for _ in 0..ops {
                match rng.index(10) {
                    // Schedule (biased: queues grow more than they shrink).
                    0..=4 => {
                        let at = floor + SimDuration::from_micros(rng.index(1_000) as u64);
                        let fid = fast.schedule(at, live.len());
                        let nid = naive.schedule(at, live.len());
                        live.push((fid, nid));
                    }
                    // Cancel a random live event.
                    5..=6 => {
                        if !live.is_empty() {
                            let i = rng.index(live.len());
                            let (fid, nid) = live.swap_remove(i);
                            fast.cancel(fid);
                            naive.cancel(nid);
                        }
                    }
                    // Cancel an already-dead id (stale handle): must be a no-op.
                    7 => {
                        let fid = fast.schedule(floor, usize::MAX);
                        let nid = naive.schedule(floor, usize::MAX);
                        fast.cancel(fid);
                        naive.cancel(nid);
                        fast.cancel(fid); // double cancel
                    }
                    // Pop: both must agree exactly.
                    _ => {
                        let f = fast.pop();
                        let n = naive.pop();
                        assert_eq!(f, n, "pop mismatch (case {case})");
                        if let Some((at, _)) = f {
                            floor = at;
                            // The popped event's handles stay in `live` on
                            // purpose: a later "cancel" on them exercises the
                            // stale-handle path of both implementations.
                        }
                    }
                }
                assert_eq!(fast.len(), naive.len(), "len drift (case {case})");
            }
            // Drain: the full remaining sequence must match.
            loop {
                let f = fast.pop();
                let n = naive.pop();
                assert_eq!(f, n, "drain mismatch (case {case})");
                if f.is_none() {
                    break;
                }
            }
            assert_eq!(fast.len(), 0);
        }
    }

    /// Events always come out of the queue in non-decreasing time order,
    /// regardless of the insertion order.
    #[test]
    fn queue_pops_in_nondecreasing_order() {
        for case in 0..50u64 {
            let mut rng = SimRng::new(100 + case);
            let n = 1 + rng.index(200);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_micros(rng.index(1_000_000) as u64), i);
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
                popped += 1;
            }
            assert_eq!(popped, n);
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_is_exact() {
        for case in 0..50u64 {
            let mut rng = SimRng::new(200 + case);
            let n = 1 + rng.index(100);
            let mut q = EventQueue::new();
            let ids: Vec<(EventId, usize)> = (0..n)
                .map(|i| {
                    (
                        q.schedule(SimTime::from_micros(rng.index(1_000_000) as u64), i),
                        i,
                    )
                })
                .collect();
            let mut expected: std::collections::HashSet<usize> = (0..n).collect();
            for (id, payload) in &ids {
                if rng.chance(0.5) {
                    q.cancel(*id);
                    expected.remove(payload);
                }
            }
            let mut seen = std::collections::HashSet::new();
            while let Some((_, p)) = q.pop() {
                seen.insert(p);
            }
            assert_eq!(seen, expected);
        }
    }

    /// Summary invariants: min <= mean <= max and spread is non-negative.
    #[test]
    fn summary_invariants() {
        for case in 0..50u64 {
            let mut rng = SimRng::new(300 + case);
            let n = 1 + rng.index(200);
            let values: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.5) * 2e6).collect();
            let s = Summary::of(&values).unwrap();
            assert!(s.min <= s.mean + 1e-9);
            assert!(s.mean <= s.max + 1e-9);
            assert!(s.std_dev >= 0.0);
            assert_eq!(s.count, values.len());
        }
    }

    /// Percentile is monotone in p and bounded by the data range.
    #[test]
    fn percentile_monotone() {
        for case in 0..50u64 {
            let mut rng = SimRng::new(400 + case);
            let n = 1 + rng.index(100);
            let values: Vec<f64> = (0..n).map(|_| rng.unit() * 1e6).collect();
            let (p1, p2) = (rng.unit() * 100.0, rng.unit() * 100.0);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&values, lo).unwrap();
            let b = percentile(&values, hi).unwrap();
            assert!(a <= b + 1e-9);
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(a >= min - 1e-9 && b <= max + 1e-9);
        }
    }

    /// SimTime arithmetic: (t + d) - t == d for representable values.
    #[test]
    fn time_addition_roundtrip() {
        let mut rng = SimRng::new(500);
        for _ in 0..1000 {
            let t = rng.next_u64() % (u64::MAX / 4);
            let d = rng.next_u64() % (u64::MAX / 4);
            let time = SimTime::from_micros(t);
            let dur = SimDuration::from_micros(d);
            assert_eq!((time + dur) - time, dur);
        }
    }
}
