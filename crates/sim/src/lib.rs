//! # mrp-sim — discrete-event simulation kernel
//!
//! The foundation shared by every simulated substrate in the
//! `hadoop-os-preempt` workspace: a virtual clock ([`SimTime`] /
//! [`SimDuration`]), a deterministic cancellable event queue
//! ([`EventQueue`]), a seeded random number generator ([`SimRng`]) and the
//! statistics helpers ([`Summary`], [`OnlineStats`]) used by the experiment
//! harness to reproduce the paper's figures.
//!
//! Determinism is a design goal throughout: same seed, same configuration ⇒
//! bit-identical simulation, which makes the reproduction of the paper's
//! figures and the golden-shape integration tests stable.
//!
//! ```
//! use mrp_sim::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_secs(3), "heartbeat");
//! queue.schedule(SimTime::from_secs(1), "task-finished");
//! assert_eq!(queue.pop(), Some((SimTime::from_secs(1), "task-finished")));
//! assert_eq!(queue.now(), SimTime::from_secs(1));
//! ```

#![warn(missing_docs)]

mod events;
mod rng;
mod stats;
mod time;

pub use events::{EventId, EventQueue};
pub use rng::SimRng;
pub use stats::{percentile, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};

/// Number of bytes in one mebibyte; sizes throughout the workspace are plain
/// `u64` byte counts and these constants keep call sites readable.
pub const MIB: u64 = 1024 * 1024;
/// Number of bytes in one gibibyte.
pub const GIB: u64 = 1024 * MIB;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always come out of the queue in non-decreasing time order,
        /// regardless of the insertion order.
        #[test]
        fn queue_pops_in_nondecreasing_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
        }

        /// Cancelling an arbitrary subset removes exactly that subset.
        #[test]
        fn queue_cancellation_is_exact(
            times in proptest::collection::vec(0u64..1_000_000, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times.iter().enumerate()
                .map(|(i, t)| (q.schedule(SimTime::from_micros(*t), i), i))
                .collect();
            let mut expected: std::collections::HashSet<usize> =
                (0..times.len()).collect();
            for (idx, (id, payload)) in ids.iter().enumerate() {
                if *cancel_mask.get(idx).unwrap_or(&false) {
                    q.cancel(*id);
                    expected.remove(payload);
                }
            }
            let mut seen = std::collections::HashSet::new();
            while let Some((_, p)) = q.pop() {
                seen.insert(p);
            }
            prop_assert_eq!(seen, expected);
        }

        /// Summary invariants: min <= mean <= max and spread is non-negative.
        #[test]
        fn summary_invariants(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
            prop_assert_eq!(s.count, values.len());
        }

        /// Percentile is monotone in p and bounded by the data range.
        #[test]
        fn percentile_monotone(values in proptest::collection::vec(0f64..1e6, 1..100),
                               p1 in 0f64..100.0, p2 in 0f64..100.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&values, lo).unwrap();
            let b = percentile(&values, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
        }

        /// SimTime arithmetic: (t + d) - t == d for all representable values.
        #[test]
        fn time_addition_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
            let time = SimTime::from_micros(t);
            let dur = SimDuration::from_micros(d);
            prop_assert_eq!((time + dur) - time, dur);
        }
    }
}
