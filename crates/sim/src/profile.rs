//! Event-loop profiler: attributes wall-clock time to event kinds with
//! coarse batched timing.
//!
//! Reading a monotonic clock per event would dominate a loop that processes
//! millions of events per second, so the profiler reads [`Instant`] once per
//! *batch* (a few hundred events) and splits the batch's elapsed wall time
//! across the event kinds seen in it, proportionally to their counts. Counts
//! stay exact; per-kind wall time is approximate at batch granularity but
//! sums to the full loop duration, so attribution is complete by
//! construction (the `≥95%` smoke tests guard against future regressions
//! such as un-flushed tails).
//!
//! A second, independent view covers scheduler actions: every action is
//! counted, and one in [`ACTION_SAMPLE_EVERY`] scheduler invocations is
//! timed directly and scaled up. Action wall time overlaps the event-kind
//! view (actions run *inside* event handlers) and is reported separately,
//! not added to the loop total.
//!
//! ```
//! use mrp_sim::LoopProfiler;
//!
//! let mut p = LoopProfiler::new(&["heartbeat", "phase_done"], &["launch"]);
//! p.begin_loop();
//! for _ in 0..1000 {
//!     p.note(0);
//! }
//! p.note(1);
//! p.end_loop();
//! let report = p.report();
//! assert_eq!(report.events[0].count, 1000);
//! assert_eq!(report.events[1].count, 1);
//! assert!(report.attribution() >= 0.95);
//! ```

use std::time::Instant;

/// Events per timing batch. Large enough that the two `Instant` reads per
/// batch are noise, small enough that attribution tracks phase changes in
/// the workload.
const BATCH_EVENTS: u32 = 256;

/// One scheduler invocation in this many is timed directly (and scaled by
/// the same factor); the rest only count their actions.
pub const ACTION_SAMPLE_EVERY: u64 = 64;

/// Profiles an event loop by kind. See the module docs for the approach.
#[derive(Clone, Debug)]
pub struct LoopProfiler {
    kind_names: Vec<String>,
    kind_counts: Vec<u64>,
    kind_nanos: Vec<f64>,
    action_names: Vec<String>,
    action_counts: Vec<u64>,
    action_nanos: Vec<f64>,
    action_calls: u64,
    batch: Vec<u32>,
    batch_events: u32,
    batch_start: Option<Instant>,
    loop_start: Option<Instant>,
    loop_nanos: f64,
    attributed_nanos: f64,
    idle_nanos: f64,
}

impl LoopProfiler {
    /// A profiler for the given event kinds and scheduler-action kinds.
    /// [`note`](Self::note) / [`record_actions`](Self::record_actions) index
    /// into these slices.
    pub fn new(kinds: &[&str], actions: &[&str]) -> Self {
        LoopProfiler {
            kind_names: kinds.iter().map(|s| s.to_string()).collect(),
            kind_counts: vec![0; kinds.len()],
            kind_nanos: vec![0.0; kinds.len()],
            action_names: actions.iter().map(|s| s.to_string()).collect(),
            action_counts: vec![0; actions.len()],
            action_nanos: vec![0.0; actions.len()],
            action_calls: 0,
            batch: vec![0; kinds.len()],
            batch_events: 0,
            batch_start: None,
            loop_start: None,
            loop_nanos: 0.0,
            attributed_nanos: 0.0,
            idle_nanos: 0.0,
        }
    }

    /// Mark the start of (one entry into) the event loop. Wall time outside
    /// `begin_loop`/`end_loop` windows is never attributed.
    pub fn begin_loop(&mut self) {
        let now = Instant::now();
        self.batch_start = Some(now);
        self.loop_start = Some(now);
    }

    /// Record one processed event of the given kind.
    pub fn note(&mut self, kind: usize) {
        self.kind_counts[kind] += 1;
        self.batch[kind] += 1;
        self.batch_events += 1;
        if self.batch_events >= BATCH_EVENTS {
            self.flush();
        }
    }

    fn flush(&mut self) -> Instant {
        let now = Instant::now();
        let Some(start) = self.batch_start else {
            return now;
        };
        let elapsed = now.duration_since(start).as_secs_f64() * 1e9;
        if self.batch_events == 0 {
            // An empty window (loop entered but no events yet): real loop
            // time, but nothing to pin it on.
            self.idle_nanos += elapsed;
        } else {
            let total = f64::from(self.batch_events);
            for (i, n) in self.batch.iter_mut().enumerate() {
                if *n > 0 {
                    self.kind_nanos[i] += elapsed * f64::from(*n) / total;
                    *n = 0;
                }
            }
            self.attributed_nanos += elapsed;
        }
        self.batch_events = 0;
        self.batch_start = Some(now);
        now
    }

    /// Mark the end of the current event-loop entry, flushing the partial
    /// batch so the whole window is attributed. The loop window is closed at
    /// the flush's own timestamp, so attributed + idle time partitions the
    /// window exactly.
    pub fn end_loop(&mut self) {
        let now = self.flush();
        if let Some(start) = self.loop_start.take() {
            self.loop_nanos += now.duration_since(start).as_secs_f64() * 1e9;
        }
        self.batch_start = None;
    }

    /// Called once per scheduler invocation; returns a start timestamp for
    /// the one-in-[`ACTION_SAMPLE_EVERY`] invocations that are timed.
    pub fn action_timer(&mut self) -> Option<Instant> {
        self.action_calls += 1;
        if self.action_calls.is_multiple_of(ACTION_SAMPLE_EVERY) {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record the actions of one scheduler invocation: `per_kind[i]` actions
    /// of kind `i`, plus the timestamp returned by
    /// [`action_timer`](Self::action_timer) when this invocation was
    /// sampled. Sampled elapsed time is scaled by the sampling factor and
    /// split across the invocation's action kinds by count.
    pub fn record_actions(&mut self, per_kind: &[u32], timer: Option<Instant>) {
        let total: u32 = per_kind.iter().sum();
        for (i, &n) in per_kind.iter().enumerate() {
            self.action_counts[i] += u64::from(n);
        }
        if let (Some(start), true) = (timer, total > 0) {
            let scaled = start.elapsed().as_secs_f64() * 1e9 * ACTION_SAMPLE_EVERY as f64;
            for (i, &n) in per_kind.iter().enumerate() {
                if n > 0 {
                    self.action_nanos[i] += scaled * f64::from(n) / f64::from(total);
                }
            }
        }
    }

    /// Snapshot the accumulated profile.
    pub fn report(&self) -> ProfileReport {
        let events = self
            .kind_names
            .iter()
            .zip(&self.kind_counts)
            .zip(&self.kind_nanos)
            .map(|((name, &count), &nanos)| ProfileRow {
                name: name.clone(),
                count,
                wall_secs: nanos / 1e9,
            })
            .collect();
        let actions = self
            .action_names
            .iter()
            .zip(&self.action_counts)
            .zip(&self.action_nanos)
            .map(|((name, &count), &nanos)| ProfileRow {
                name: name.clone(),
                count,
                wall_secs: nanos / 1e9,
            })
            .collect();
        ProfileReport {
            events,
            actions,
            loop_wall_secs: self.loop_nanos / 1e9,
            attributed_secs: self.attributed_nanos / 1e9,
            idle_secs: self.idle_nanos / 1e9,
        }
    }
}

/// One profiled row: an event kind or scheduler action.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileRow {
    /// Kind name as passed to [`LoopProfiler::new`].
    pub name: String,
    /// Exact number of occurrences.
    pub count: u64,
    /// Wall-clock seconds attributed to this kind (batch-approximate).
    pub wall_secs: f64,
}

/// Snapshot of a [`LoopProfiler`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileReport {
    /// Per-event-kind rows, in the order passed to [`LoopProfiler::new`].
    pub events: Vec<ProfileRow>,
    /// Per-scheduler-action rows (wall time is sampled and scaled; it
    /// overlaps the event rows rather than adding to the loop total).
    pub actions: Vec<ProfileRow>,
    /// Total wall time spent inside `begin_loop`/`end_loop` windows.
    pub loop_wall_secs: f64,
    /// Wall time attributed to some event kind.
    pub attributed_secs: f64,
    /// Loop wall time observed in windows that processed no events.
    pub idle_secs: f64,
}

impl ProfileReport {
    /// Fraction of loop wall time attributed to some event kind
    /// (1.0 for a loop that processed no events at all).
    pub fn attribution(&self) -> f64 {
        if self.loop_wall_secs <= 0.0 || self.total_events() == 0 {
            1.0
        } else {
            self.attributed_secs / self.loop_wall_secs
        }
    }

    /// Total number of profiled events.
    pub fn total_events(&self) -> u64 {
        self.events.iter().map(|r| r.count).sum()
    }

    /// Render the profile as an aligned plain-text table (events, then
    /// actions), sorted by attributed wall time, descending.
    pub fn table(&self) -> String {
        fn section(out: &mut String, title: &str, rows: &[ProfileRow], denom: f64) {
            let mut rows: Vec<&ProfileRow> = rows.iter().filter(|r| r.count > 0).collect();
            rows.sort_by(|a, b| {
                b.wall_secs
                    .partial_cmp(&a.wall_secs)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.count.cmp(&a.count))
            });
            out.push_str(&format!(
                "{title}\n  {:<22} {:>12} {:>12} {:>7}\n",
                "kind", "count", "wall_ms", "share"
            ));
            for r in rows {
                let share = if denom > 0.0 {
                    r.wall_secs / denom * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {:<22} {:>12} {:>12.3} {:>6.1}%\n",
                    r.name,
                    r.count,
                    r.wall_secs * 1e3,
                    share
                ));
            }
        }
        let mut out = String::new();
        section(&mut out, "event loop", &self.events, self.loop_wall_secs);
        section(
            &mut out,
            "scheduler actions",
            &self.actions,
            self.loop_wall_secs,
        );
        out.push_str(&format!(
            "  loop wall {:.3} ms, attributed {:.1}% ({} events)\n",
            self.loop_wall_secs * 1e3,
            self.attribution() * 100.0,
            self.total_events()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_and_attribution_is_complete() {
        let mut p = LoopProfiler::new(&["a", "b", "c"], &["x"]);
        p.begin_loop();
        for i in 0..10_000u32 {
            p.note((i % 3) as usize);
        }
        p.end_loop();
        let r = p.report();
        assert_eq!(r.events[0].count, 3334);
        assert_eq!(r.events[1].count, 3333);
        assert_eq!(r.events[2].count, 3333);
        assert!(r.attribution() >= 0.95, "attribution {}", r.attribution());
        // Attributed time never exceeds observed loop time (modulo clock
        // resolution on the final partial flush).
        assert!(r.attributed_secs <= r.loop_wall_secs + 1e-6);
    }

    #[test]
    fn multiple_loop_windows_accumulate() {
        let mut p = LoopProfiler::new(&["a"], &[]);
        for _ in 0..3 {
            p.begin_loop();
            for _ in 0..100 {
                p.note(0);
            }
            p.end_loop();
        }
        let r = p.report();
        assert_eq!(r.events[0].count, 300);
        assert!(r.attribution() >= 0.95);
    }

    #[test]
    fn actions_count_exactly_and_sample_timing() {
        let mut p = LoopProfiler::new(&["a"], &["launch", "kill"]);
        p.begin_loop();
        for _ in 0..200 {
            let t = p.action_timer();
            p.record_actions(&[2, 1], t);
        }
        p.end_loop();
        let r = p.report();
        assert_eq!(r.actions[0].count, 400);
        assert_eq!(r.actions[1].count, 200);
        // 200 calls at a 1-in-64 sampling rate: at least three were timed.
        assert!(r.actions[0].wall_secs >= 0.0);
        let text = r.table();
        assert!(text.contains("launch"));
        assert!(text.contains("attributed"));
    }

    #[test]
    fn empty_loop_reports_full_attribution() {
        let mut p = LoopProfiler::new(&["a"], &[]);
        p.begin_loop();
        p.end_loop();
        let r = p.report();
        assert_eq!(r.total_events(), 0);
        assert_eq!(r.attribution(), 1.0);
    }
}
