//! Offline stand-in for the real `serde_derive` crate.
//!
//! The workspace builds in environments without access to crates.io, so the
//! derive macros here only *accept* the same syntax as serde's — including
//! `#[serde(...)]` helper attributes — and expand to nothing. No code in the
//! workspace relies on generated `Serialize`/`Deserialize` impls (the JSON
//! configuration files are read and written by hand-rolled code in
//! `mrp_preempt::json`); the derives exist so type definitions stay
//! source-compatible with the real serde if it is ever swapped back in.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
