//! # mrp-workload — synthetic workload generation
//!
//! The paper evaluates its primitive with synthetic mappers that "read and
//! parse randomly generated input", in the style of the SWIM workload suites
//! (Chen et al., MASCOTS 2011) that Natjam's evaluation also uses. This crate
//! generates such workloads:
//!
//! * [`two_job_scenario`] — the paper's exact setup: a low-priority
//!   single-block job `tl` and a high-priority single-block job `th`;
//! * [`SwimGenerator`] — a SWIM-like multi-job trace: heavy-tailed job sizes,
//!   Poisson arrivals, a mix of stateless and stateful (memory-hungry) jobs —
//!   used by the multi-job scheduler examples and the ablation benches.

#![warn(missing_docs)]

use mrp_engine::{JobSpec, MapInput, TaskProfile};
use mrp_sim::{SimRng, SimTime, GIB, MIB};
use serde::{Deserialize, Serialize};

/// Names used by the paper for its two jobs.
pub const LOW_PRIORITY_JOB: &str = "tl";
/// Name of the high-priority job in the paper's scenario.
pub const HIGH_PRIORITY_JOB: &str = "th";

/// The paper's two-job workload: both jobs are single-task, map-only, over a
/// 512 MB single-block HDFS file; `tl` has low priority and `th` high
/// priority. `tl_state`/`th_state` bytes of dirty memory are allocated in the
/// respective setup phases (0 for the light-weight baseline, 2 GB+ for the
/// worst-case experiments).
pub fn two_job_scenario(tl_state: u64, th_state: u64) -> (JobSpec, JobSpec) {
    let tl = JobSpec::map_only(LOW_PRIORITY_JOB, "/input/tl-512mb")
        .with_priority(0)
        .with_profile(TaskProfile::memory_hungry(tl_state));
    let th = JobSpec::map_only(HIGH_PRIORITY_JOB, "/input/th-512mb")
        .with_priority(10)
        .with_profile(TaskProfile::memory_hungry(th_state));
    (tl, th)
}

/// Input paths used by [`two_job_scenario`]; the experiment harness creates
/// these files in the simulated HDFS before submitting the jobs.
pub fn two_job_input_files() -> Vec<(String, u64)> {
    vec![
        ("/input/tl-512mb".to_string(), 512 * MIB),
        ("/input/th-512mb".to_string(), 512 * MIB),
    ]
}

/// One job of a generated trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    /// When the job is submitted.
    pub arrival: SimTime,
    /// The job specification.
    pub spec: JobSpec,
}

/// Configuration of the SWIM-like generator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwimConfig {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean inter-arrival time in seconds (exponential distribution).
    pub mean_interarrival_secs: f64,
    /// Bounded-Pareto shape parameter for job input sizes.
    pub size_shape: f64,
    /// Smallest job input size in bytes.
    pub min_job_bytes: u64,
    /// Largest job input size in bytes.
    pub max_job_bytes: u64,
    /// Bytes of input each map task consumes (block size).
    pub bytes_per_task: u64,
    /// Fraction of jobs that are memory-hungry (stateful).
    pub stateful_fraction: f64,
    /// State memory allocated by stateful jobs, in bytes.
    pub stateful_memory: u64,
    /// Fraction of jobs marked high priority.
    pub high_priority_fraction: f64,
    /// Fraction of jobs whose tasks parse slowly (degraded hardware, skewed
    /// records): their long-running tasks pin slots and strand suspended
    /// neighbours, the straggler population fault/speculation scenarios
    /// need. `0.0` (the default) draws nothing from the rng, so existing
    /// traces are byte-identical.
    pub slow_fraction: f64,
    /// Parse rate of slow jobs' tasks, bytes/second (only read when
    /// [`SwimConfig::slow_fraction`] selects a job).
    pub slow_parse_rate_bytes_per_sec: f64,
    /// Only jobs with at most this many map tasks can be slow: a handful of
    /// long-running tasks pins slots (stranding suspended neighbours) without
    /// letting one giant degraded job dominate the whole trace's makespan.
    pub slow_max_tasks: u32,
    /// Reduce tasks as a fraction of each job's map tasks (`ceil(maps *
    /// ratio)`, so any positive ratio gives at least one reduce). `0.0` (the
    /// default) keeps every job map-only and — being a pure function of the
    /// map count, no rng draw — existing traces byte-identical. The
    /// shuffle-fault scenarios use it to give churn something to destroy:
    /// reduces whose map outputs can die mid-shuffle.
    pub reduce_ratio: f64,
    /// Number of tenants jobs are spread over, round-robin by job index
    /// (draw-free, so traces with `1` — the default — stay byte-identical
    /// to pre-tenant ones; `0` behaves like `1`). Multi-tenant scheduling
    /// scenarios use the tags with [`mrp_engine::TenantLedger`]-based
    /// policies.
    #[serde(default)]
    pub tenants: u32,
    /// Fraction of jobs tagged best-effort (scavenger class), selected by a
    /// draw-free fractional accumulator over the job index so `0.0` (the
    /// default) changes nothing. Best-effort jobs are also forced to
    /// priority 0 and tenant 0: they ride under every tenant's quota.
    #[serde(default)]
    pub best_effort_fraction: f64,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            jobs: 20,
            mean_interarrival_secs: 60.0,
            size_shape: 1.2,
            min_job_bytes: 128 * MIB,
            max_job_bytes: 4 * GIB,
            bytes_per_task: 128 * MIB,
            stateful_fraction: 0.2,
            stateful_memory: GIB,
            high_priority_fraction: 0.25,
            slow_fraction: 0.0,
            slow_parse_rate_bytes_per_sec: 1.5 * MIB as f64,
            slow_max_tasks: u32::MAX,
            reduce_ratio: 0.0,
            tenants: 1,
            best_effort_fraction: 0.0,
        }
    }
}

/// A SWIM-like synthetic workload generator.
#[derive(Clone, Debug)]
pub struct SwimGenerator {
    config: SwimConfig,
    rng: SimRng,
}

impl SwimGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: SwimConfig, seed: u64) -> Self {
        assert!(config.jobs > 0, "a workload needs at least one job");
        assert!(config.min_job_bytes > 0 && config.max_job_bytes > config.min_job_bytes);
        assert!(config.bytes_per_task > 0);
        SwimGenerator {
            config,
            rng: SimRng::new(seed),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SwimConfig {
        &self.config
    }

    /// Generates the trace: jobs with arrival times, sizes, priorities and
    /// memory profiles.
    pub fn generate(&mut self) -> Vec<TraceJob> {
        let mut out = Vec::with_capacity(self.config.jobs);
        let mut clock = 0.0f64;
        // Fractional accumulator for best-effort tagging: deterministic and
        // draw-free, so fraction 0.0 leaves the rng stream (and thus every
        // existing trace) byte-identical.
        let mut best_effort_acc = 0.0f64;
        for i in 0..self.config.jobs {
            clock += self.rng.exponential(self.config.mean_interarrival_secs);
            let size = self
                .rng
                .bounded_pareto(
                    self.config.size_shape,
                    self.config.min_job_bytes as f64,
                    self.config.max_job_bytes as f64,
                )
                .round() as u64;
            let tasks = size.div_ceil(self.config.bytes_per_task).max(1) as u32;
            let stateful = self.rng.chance(self.config.stateful_fraction);
            let high_priority = self.rng.chance(self.config.high_priority_fraction);
            // Short-circuit keeps the rng sequence of slow-free traces
            // byte-identical to pre-`slow_fraction` generators.
            let slow = self.config.slow_fraction > 0.0
                && self.rng.chance(self.config.slow_fraction)
                && tasks <= self.config.slow_max_tasks;
            let mut profile = if stateful {
                TaskProfile::memory_hungry(self.config.stateful_memory)
            } else {
                TaskProfile::lightweight()
            };
            if slow {
                profile.parse_rate_bytes_per_sec = Some(self.config.slow_parse_rate_bytes_per_sec);
            }
            // Draw-free: a pure function of the map count, so traces with
            // ratio 0.0 stay byte-identical to pre-`reduce_ratio` ones.
            let reduce_tasks = (tasks as f64 * self.config.reduce_ratio).ceil() as u32;
            // Tenant tags and the best-effort class are pure functions of
            // the job index (round-robin resp. fractional accumulator): no
            // rng draws, so default-configured traces stay byte-identical.
            best_effort_acc += self.config.best_effort_fraction;
            let best_effort = best_effort_acc >= 1.0;
            if best_effort {
                best_effort_acc -= 1.0;
            }
            let tenant = if self.config.tenants > 1 && !best_effort {
                i as u32 % self.config.tenants
            } else {
                0
            };
            let spec = JobSpec {
                name: format!("swim-{i:03}"),
                priority: if best_effort {
                    0
                } else if high_priority {
                    10
                } else {
                    0
                },
                input: MapInput::Synthetic {
                    tasks,
                    bytes_per_task: self.config.bytes_per_task,
                },
                reduce_tasks,
                profile,
                tenant,
                best_effort,
            };
            out.push(TraceJob {
                arrival: SimTime::from_secs_f64(clock),
                spec,
            });
        }
        out
    }
}

/// Converts a synthetic SWIM trace into DFS-file-backed jobs plus the list
/// of input files the harness must create (path, bytes) before submitting.
///
/// Synthetic jobs carry no placement preference, so every launch is trivially
/// "node-local"; backing each job with a real HDFS file (one -
/// `bytes_per_task`-sized block per map task, replicas placed by the
/// NameNode) is what makes rack-aware scheduling measurable. The file for
/// job `i` is `{dir}/{job name}`; spread the writers over the cluster when
/// creating them (e.g. via `Cluster::create_input_file_from`) so first
/// replicas do not all stack on node 0.
pub fn dfs_backed(trace: &[TraceJob], dir: &str) -> (Vec<TraceJob>, Vec<(String, u64)>) {
    let mut jobs = Vec::with_capacity(trace.len());
    let mut files = Vec::with_capacity(trace.len());
    for job in trace {
        let MapInput::Synthetic {
            tasks,
            bytes_per_task,
        } = job.spec.input
        else {
            // Already file-backed: pass through unchanged.
            jobs.push(job.clone());
            continue;
        };
        let path = format!("{dir}/{}", job.spec.name);
        files.push((path.clone(), u64::from(tasks) * bytes_per_task));
        let mut spec = job.spec.clone();
        spec.input = MapInput::DfsFile { path };
        jobs.push(TraceJob {
            arrival: job.arrival,
            spec,
        });
    }
    (jobs, files)
}

/// Summary statistics of a generated trace, used in reports and tests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of jobs.
    pub jobs: usize,
    /// Total number of map tasks.
    pub tasks: usize,
    /// Total input bytes.
    pub total_bytes: u64,
    /// Number of high-priority jobs.
    pub high_priority_jobs: usize,
    /// Number of stateful (memory-hungry) jobs.
    pub stateful_jobs: usize,
    /// Time of the last arrival, in seconds.
    pub last_arrival_secs: f64,
}

/// Summarises a trace.
pub fn summarize(trace: &[TraceJob]) -> TraceSummary {
    let tasks = trace
        .iter()
        .map(|j| match j.spec.input {
            MapInput::Synthetic { tasks, .. } => tasks as usize,
            MapInput::DfsFile { .. } => 1,
        })
        .sum();
    let total_bytes = trace
        .iter()
        .map(|j| match j.spec.input {
            MapInput::Synthetic {
                tasks,
                bytes_per_task,
            } => tasks as u64 * bytes_per_task,
            MapInput::DfsFile { .. } => 0,
        })
        .sum();
    TraceSummary {
        jobs: trace.len(),
        tasks,
        total_bytes,
        high_priority_jobs: trace.iter().filter(|j| j.spec.priority > 0).count(),
        stateful_jobs: trace
            .iter()
            .filter(|j| j.spec.profile.state_memory > 0)
            .count(),
        last_arrival_secs: trace.last().map(|j| j.arrival.as_secs_f64()).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shapes() {
        let (tl, th) = two_job_scenario(0, 0);
        assert_eq!(tl.name, "tl");
        assert_eq!(th.name, "th");
        assert!(th.priority > tl.priority);
        assert_eq!(tl.profile.state_memory, 0);
        let (_tl, th) = two_job_scenario(2 * GIB, GIB);
        assert_eq!(th.profile.state_memory, GIB);
        assert_eq!(two_job_input_files().len(), 2);
        assert!(two_job_input_files()
            .iter()
            .all(|(_, len)| *len == 512 * MIB));
    }

    #[test]
    fn swim_generates_the_requested_number_of_jobs() {
        let mut g = SwimGenerator::new(SwimConfig::default(), 1);
        let trace = g.generate();
        assert_eq!(trace.len(), 20);
        let summary = summarize(&trace);
        assert_eq!(summary.jobs, 20);
        assert!(summary.tasks >= 20);
        assert!(summary.total_bytes >= 20 * 128 * MIB);
        assert!(summary.last_arrival_secs > 0.0);
    }

    #[test]
    fn swim_arrivals_are_increasing_and_sizes_bounded() {
        let cfg = SwimConfig::default();
        let mut g = SwimGenerator::new(cfg.clone(), 7);
        let trace = g.generate();
        for w in trace.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        for job in &trace {
            if let MapInput::Synthetic {
                tasks,
                bytes_per_task,
            } = job.spec.input
            {
                let size = tasks as u64 * bytes_per_task;
                assert!(size >= cfg.min_job_bytes);
                assert!(size <= cfg.max_job_bytes + cfg.bytes_per_task);
                assert!(tasks >= 1);
            } else {
                panic!("SWIM jobs are synthetic");
            }
        }
    }

    #[test]
    fn dfs_backed_preserves_shape_and_lists_files() {
        let mut g = SwimGenerator::new(SwimConfig::default(), 5);
        let trace = g.generate();
        let (jobs, files) = dfs_backed(&trace, "/swim");
        assert_eq!(jobs.len(), trace.len());
        assert_eq!(files.len(), trace.len());
        for ((orig, conv), (path, bytes)) in trace.iter().zip(&jobs).zip(&files) {
            assert_eq!(orig.arrival, conv.arrival);
            assert_eq!(orig.spec.name, conv.spec.name);
            assert_eq!(orig.spec.priority, conv.spec.priority);
            let MapInput::Synthetic {
                tasks,
                bytes_per_task,
            } = orig.spec.input
            else {
                panic!("SWIM traces are synthetic");
            };
            assert_eq!(*bytes, u64::from(tasks) * bytes_per_task);
            assert_eq!(path, &format!("/swim/{}", orig.spec.name));
            assert!(matches!(conv.spec.input, MapInput::DfsFile { .. }));
        }
    }

    #[test]
    fn reduce_ratio_adds_reduces_without_perturbing_the_trace() {
        let base = SwimGenerator::new(SwimConfig::default(), 42).generate();
        let cfg = SwimConfig {
            reduce_ratio: 0.25,
            ..SwimConfig::default()
        };
        let with = SwimGenerator::new(cfg, 42).generate();
        assert_eq!(base.len(), with.len());
        for (b, w) in base.iter().zip(&with) {
            // Same arrivals, sizes and profiles: the ratio draws nothing.
            assert_eq!(b.arrival, w.arrival);
            assert_eq!(b.spec.input, w.spec.input);
            assert_eq!(b.spec.profile, w.spec.profile);
            assert_eq!(b.spec.reduce_tasks, 0);
            let MapInput::Synthetic { tasks, .. } = w.spec.input else {
                panic!("SWIM jobs are synthetic");
            };
            assert_eq!(w.spec.reduce_tasks, (tasks as f64 * 0.25).ceil() as u32);
            assert!(w.spec.reduce_tasks >= 1, "any positive ratio gives >= 1");
        }
    }

    #[test]
    fn tenant_tagging_does_not_perturb_the_trace() {
        let base = SwimGenerator::new(SwimConfig::default(), 42).generate();
        let cfg = SwimConfig {
            tenants: 3,
            best_effort_fraction: 0.25,
            ..SwimConfig::default()
        };
        let tagged = SwimGenerator::new(cfg, 42).generate();
        assert_eq!(base.len(), tagged.len());
        let mut best_effort_seen = 0;
        for (i, (b, t)) in base.iter().zip(&tagged).enumerate() {
            // Same arrivals, sizes and profiles: tagging draws nothing.
            assert_eq!(b.arrival, t.arrival);
            assert_eq!(b.spec.input, t.spec.input);
            assert_eq!(b.spec.profile, t.spec.profile);
            assert_eq!(b.spec.tenant, 0);
            assert!(!b.spec.best_effort);
            if t.spec.best_effort {
                best_effort_seen += 1;
                assert_eq!(t.spec.tenant, 0, "best-effort jobs are untagged");
                assert_eq!(t.spec.priority, 0, "best-effort jobs are priority 0");
            } else {
                assert_eq!(t.spec.tenant, i as u32 % 3, "round-robin by job index");
            }
        }
        // A 0.25 fraction over 20 jobs yields exactly 5 best-effort jobs
        // (fractional accumulator, no randomness).
        assert_eq!(best_effort_seen, 5);
    }

    #[test]
    fn swim_is_deterministic_per_seed() {
        let a = SwimGenerator::new(SwimConfig::default(), 42).generate();
        let b = SwimGenerator::new(SwimConfig::default(), 42).generate();
        let c = SwimGenerator::new(SwimConfig::default(), 43).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn swim_heavy_tail_produces_mostly_small_jobs() {
        let cfg = SwimConfig {
            jobs: 400,
            ..SwimConfig::default()
        };
        let mut g = SwimGenerator::new(cfg, 3);
        let trace = g.generate();
        let sizes: Vec<u64> = trace
            .iter()
            .map(|j| match j.spec.input {
                MapInput::Synthetic {
                    tasks,
                    bytes_per_task,
                } => tasks as u64 * bytes_per_task,
                _ => 0,
            })
            .collect();
        let small = sizes.iter().filter(|s| **s <= 512 * MIB).count();
        assert!(
            small * 2 > sizes.len(),
            "a heavy-tailed distribution should be dominated by small jobs ({small}/{})",
            sizes.len()
        );
        let max = *sizes.iter().max().unwrap();
        assert!(max >= GIB, "the tail should reach multi-GB jobs");
    }

    #[test]
    fn priority_and_stateful_fractions_are_respected_roughly() {
        let cfg = SwimConfig {
            jobs: 500,
            high_priority_fraction: 0.3,
            stateful_fraction: 0.5,
            ..SwimConfig::default()
        };
        let mut g = SwimGenerator::new(cfg, 11);
        let summary = summarize(&g.generate());
        let hp = summary.high_priority_jobs as f64 / 500.0;
        let st = summary.stateful_jobs as f64 / 500.0;
        assert!((hp - 0.3).abs() < 0.08, "high-priority fraction {hp}");
        assert!((st - 0.5).abs() < 0.08, "stateful fraction {st}");
    }

    #[test]
    #[should_panic]
    fn empty_workloads_are_rejected() {
        let cfg = SwimConfig {
            jobs: 0,
            ..SwimConfig::default()
        };
        SwimGenerator::new(cfg, 1);
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.last_arrival_secs, 0.0);
    }
}
