//! Compare the three preemption primitives (wait, kill, suspend/resume) on
//! the paper's two-job scenario and print Figure-1-style schedules plus the
//! sojourn/makespan metrics.
//!
//! ```text
//! cargo run --example preemption_primitives [r]
//! ```
//! where `r` is the tl progress (0–1) at which th is launched, default 0.5.

use hadoop_os_preempt::prelude::*;
use mrp_engine::TraceKind;

fn run(primitive: PreemptionPrimitive, fraction: f64) -> (ClusterReport, Vec<String>) {
    let (tl, th) = two_job_scenario(0, 0);
    let plan = DummyPlan::paper_scenario(primitive, "tl", th, fraction);
    let scheduler = DummyScheduler::new(plan);
    let triggers = scheduler.required_triggers();
    let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
    for (path, len) in two_job_input_files() {
        cluster.create_input_file(&path, len).expect("create input");
    }
    for (job, task, f) in triggers {
        cluster.add_progress_trigger(&job, task, f);
    }
    cluster.submit_job(tl);
    cluster.run(SimTime::from_secs(3_600));
    let lines = cluster
        .trace()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceKind::Launched
                    | TraceKind::Suspended
                    | TraceKind::Resumed
                    | TraceKind::Killed
                    | TraceKind::Completed
            )
        })
        .map(|e| e.to_line())
        .collect();
    (cluster.report(), lines)
}

fn main() {
    let fraction: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.5);
    println!(
        "th launched when tl reaches {:.0}% progress\n",
        fraction * 100.0
    );
    for primitive in PreemptionPrimitive::PAPER_SET {
        let (report, schedule) = run(primitive, fraction);
        println!("=== primitive: {primitive} ===");
        for line in schedule {
            println!("  {line}");
        }
        println!(
            "  sojourn(th) = {:6.1}s   makespan = {:6.1}s   wasted work = {:5.1}s   tl attempts = {}",
            report.sojourn_secs("th").unwrap(),
            report.makespan_secs().unwrap(),
            report.job("tl").unwrap().wasted_work_secs(),
            report.job("tl").unwrap().tasks[0].attempts,
        );
        println!();
    }
}
