//! Regenerates every figure of the paper and prints the tables that back
//! EXPERIMENTS.md. Runs the full sweeps; expect a few seconds.
//!
//! ```text
//! cargo run --release --example paper_figures
//! ```

use mrp_experiments::{run_figure, to_table, Figure};

fn main() {
    let repetitions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    for figure in Figure::ALL {
        for data in run_figure(figure, repetitions) {
            println!("{}", to_table(&data));
        }
    }
}
