//! Regenerates every figure of the paper and prints the tables that back
//! EXPERIMENTS.md. Runs the full sweeps; expect a few seconds.
//!
//! ```text
//! cargo run --release --example paper_figures
//! cargo run --release --example paper_figures -- 5
//! cargo run --release --example paper_figures -- --trace-out trace.json
//! ```
//!
//! The optional positional argument is the number of repetitions per data
//! point (default 3). `--trace-out` / `--series-out` additionally run the
//! paper's suspend/resume scenario once with the observability layer on and
//! dump its span trace (Chrome `trace_event` JSON) / sampled time series.

use hadoop_os_preempt::mrp_preempt::obs_export;
use hadoop_os_preempt::prelude::*;
use mrp_experiments::{run_figure, to_table, Figure};

fn main() {
    let (repetitions, trace_out, series_out) = parse_args();
    for figure in Figure::ALL {
        for data in run_figure(figure, repetitions) {
            println!("{}", to_table(&data));
        }
    }
    if trace_out.is_some() || series_out.is_some() {
        export_observed_run(trace_out, series_out);
    }
}

/// Runs the paper scenario once with observability on and writes the
/// requested dumps. `run_figure` drives many clusters internally and does
/// not expose their configs, so the export runs its own representative
/// scenario — the same one `quickstart` narrates.
fn export_observed_run(trace_out: Option<String>, series_out: Option<String>) {
    let (tl, th) = two_job_scenario(0, 0);
    let plan = DummyPlan::paper_scenario(PreemptionPrimitive::SuspendResume, "tl", th, 0.5);
    let scheduler = DummyScheduler::new(plan);
    let triggers = scheduler.required_triggers();
    let config = ClusterConfig::paper_single_node().with_obs(ObsConfig::full());
    let mut cluster = Cluster::new(config, Box::new(scheduler));
    for (path, len) in two_job_input_files() {
        cluster.create_input_file(&path, len).expect("create input");
    }
    for (job, task, fraction) in triggers {
        cluster.add_progress_trigger(&job, task, fraction);
    }
    cluster.submit_job(tl);
    cluster.run(SimTime::from_secs(3_600));

    let obs = cluster.observability().expect("observability enabled");
    if let Some(path) = trace_out {
        let json = obs_export::chrome_trace_json(obs.spans(), cluster.now());
        std::fs::write(&path, json.pretty()).expect("write trace");
        println!("wrote Chrome trace ({} spans) to {path}", obs.spans().len());
    }
    if let Some(path) = series_out {
        let sampler = obs.series().expect("series sampling enabled");
        std::fs::write(&path, obs_export::series_json(sampler).pretty()).expect("write series");
        println!(
            "wrote time series ({} rows) to {path}",
            sampler.rows().len()
        );
    }
}

/// Parses the optional positional repetition count plus
/// `--trace-out <path>` / `--series-out <path>`.
fn parse_args() -> (usize, Option<String>, Option<String>) {
    let mut repetitions = 3;
    let mut trace_out = None;
    let mut series_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            "--series-out" => series_out = Some(args.next().expect("--series-out needs a path")),
            other => match other.parse() {
                Ok(n) => repetitions = n,
                Err(_) => panic!("unknown argument `{other}` (try N, --trace-out, --series-out)"),
            },
        }
    }
    (repetitions, trace_out, series_out)
}
