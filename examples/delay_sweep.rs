//! Prints the delay-scheduling trade-off curve: node-local launch rate vs
//! p99 job sojourn as the per-job wait grows from zero (greedy placement)
//! to four heartbeat intervals.
//!
//! ```sh
//! cargo run --release --example delay_sweep
//! ```

use mrp_experiments::{delay_locality_sweep, delay_sweep_table, DelaySweepConfig};

fn main() {
    let cfg = DelaySweepConfig::compact();
    println!(
        "delay sweep: {} racks x {} nodes x {} map slots, {} SWIM jobs, HFSP suspend/resume\n",
        cfg.racks, cfg.nodes_per_rack, cfg.map_slots, cfg.swim.jobs,
    );
    let rows = delay_locality_sweep(&cfg);
    print!("{}", delay_sweep_table(&rows));
}
