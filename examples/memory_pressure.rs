//! The paper's worst case: both tasks allocate gigabytes of dirty state on a
//! 4 GB node, so suspending tl forces the OS to page it out (and back in).
//! Prints the swap accounting and the overheads relative to kill and wait.
//!
//! ```text
//! cargo run --example memory_pressure [state_mib]
//! ```

use hadoop_os_preempt::prelude::*;
use mrp_experiments::run_once;

fn main() {
    let state_mib: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2048);
    let state = state_mib * MIB;
    println!("both tasks allocate {state_mib} MiB of dirty state on a 4 GiB node\n");

    let mut results = Vec::new();
    for primitive in PreemptionPrimitive::PAPER_SET {
        let run = run_once(&ScenarioConfig::memory_hungry(primitive, 0.5, state), 1);
        println!(
            "{:<5} sojourn(th) = {:6.1}s  makespan = {:6.1}s  tl paged out = {:5} MiB  swap in = {:5} MiB",
            primitive.to_string(),
            run.sojourn_th_secs,
            run.makespan_secs,
            run.tl_paged_out_bytes / MIB,
            run.swap_in_bytes / MIB,
        );
        results.push((primitive, run));
    }

    let susp = &results
        .iter()
        .find(|(p, _)| *p == PreemptionPrimitive::SuspendResume)
        .unwrap()
        .1;
    let kill = &results
        .iter()
        .find(|(p, _)| *p == PreemptionPrimitive::Kill)
        .unwrap()
        .1;
    let wait = &results
        .iter()
        .find(|(p, _)| *p == PreemptionPrimitive::Wait)
        .unwrap()
        .1;
    println!();
    println!(
        "suspend/resume overhead: sojourn +{:.1}s vs kill ({:+.1}%), makespan +{:.1}s vs wait ({:+.1}%)",
        susp.sojourn_th_secs - kill.sojourn_th_secs,
        (susp.sojourn_th_secs - kill.sojourn_th_secs) / kill.sojourn_th_secs * 100.0,
        susp.makespan_secs - wait.makespan_secs,
        (susp.makespan_secs - wait.makespan_secs) / wait.makespan_secs * 100.0,
    );
    println!(
        "…but kill threw away {:.1}s of work, suspend/resume none.",
        kill.wasted_work_secs
    );
}
