//! The preemption primitive on the real operating system: spawn a worker
//! process, suspend it with SIGTSTP, observe its /proc state and RSS, resume
//! it with SIGCONT, and print the measured latencies.
//!
//! ```text
//! cargo run --example os_prototype
//! ```

use mrp_oschild::{prototype_supported, WorkerProcess};

fn main() {
    if !prototype_supported() {
        eprintln!("This example needs a Unix system with /proc; skipping.");
        return;
    }
    let worker = WorkerProcess::spawn_busy_loop().expect("spawn worker");
    println!(
        "spawned worker pid {} (state {:?})",
        worker.pid(),
        worker.state().unwrap()
    );

    for cycle in 1..=3 {
        let rt = worker.suspend_resume_roundtrip().expect("roundtrip");
        println!(
            "cycle {cycle}: SIGTSTP->stopped in {:?}, SIGCONT->running in {:?}, RSS while stopped {} KiB",
            rt.suspend_latency,
            rt.resume_latency,
            rt.rss_while_stopped / 1024
        );
    }

    println!("final state: {:?}", worker.state().unwrap());
    worker.kill().expect("kill worker");
    println!("worker killed; the same two signals are what the TaskTracker sends to task JVMs.");
}
