//! A SWIM-like multi-job workload scheduled by the preemptive FAIR scheduler
//! and the size-based HFSP scheduler, with suspend/resume vs. kill.
//!
//! ```text
//! cargo run --example multi_job_fair [jobs] [seed]
//! ```

use hadoop_os_preempt::prelude::*;
use mrp_engine::SchedulerPolicy;
use mrp_preempt::EvictionPolicy;

fn run(
    workload: &[mrp_workload::TraceJob],
    scheduler: Box<dyn SchedulerPolicy>,
    nodes: u32,
) -> ClusterReport {
    let mut cluster = Cluster::new(ClusterConfig::small_cluster(nodes, 2, 1), scheduler);
    for job in workload {
        cluster.submit_job_at(job.spec.clone(), job.arrival);
    }
    cluster.run(SimTime::from_secs(7 * 24 * 3_600));
    cluster.report()
}

fn mean_sojourn(report: &ClusterReport, high_priority: bool) -> f64 {
    let sojourns: Vec<f64> = report
        .jobs
        .iter()
        .filter(|j| (j.priority > 0) == high_priority)
        .filter_map(|j| j.sojourn_secs)
        .collect();
    if sojourns.is_empty() {
        return f64::NAN;
    }
    sojourns.iter().sum::<f64>() / sojourns.len() as f64
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);
    let config = SwimConfig {
        jobs,
        ..SwimConfig::default()
    };
    let workload = SwimGenerator::new(config, seed).generate();
    let summary = mrp_workload::summarize(&workload);
    println!(
        "workload: {} jobs, {} map tasks, {:.1} GiB of input, {} high-priority, {} memory-hungry\n",
        summary.jobs,
        summary.tasks,
        summary.total_bytes as f64 / GIB as f64,
        summary.high_priority_jobs,
        summary.stateful_jobs,
    );

    let nodes = 4;
    let schedulers: Vec<(&str, Box<dyn SchedulerPolicy>)> = vec![
        (
            "fair + suspend",
            Box::new(FairScheduler::new(
                PreemptionPrimitive::SuspendResume,
                EvictionPolicy::ClosestToCompletion,
                (nodes * 2) as usize,
                SimDuration::from_secs(15),
            )),
        ),
        (
            "fair + kill",
            Box::new(FairScheduler::new(
                PreemptionPrimitive::Kill,
                EvictionPolicy::LeastProgress,
                (nodes * 2) as usize,
                SimDuration::from_secs(15),
            )),
        ),
        (
            "hfsp + suspend",
            Box::new(HfspScheduler::new(
                PreemptionPrimitive::SuspendResume,
                EvictionPolicy::ClosestToCompletion,
            )),
        ),
        (
            "hfsp + kill",
            Box::new(HfspScheduler::new(
                PreemptionPrimitive::Kill,
                EvictionPolicy::LeastProgress,
            )),
        ),
    ];

    println!(
        "{:<16} {:>14} {:>14} {:>12} {:>12}",
        "scheduler", "hi-pri sojourn", "lo-pri sojourn", "makespan", "wasted work"
    );
    for (name, scheduler) in schedulers {
        let report = run(&workload, scheduler, nodes);
        println!(
            "{:<16} {:>13.1}s {:>13.1}s {:>11.1}s {:>11.1}s",
            name,
            mean_sojourn(&report, true),
            mean_sojourn(&report, false),
            report.makespan_secs().unwrap_or(f64::NAN),
            report.total_wasted_work_secs(),
        );
    }
}
