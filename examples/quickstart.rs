//! Quickstart: run the paper's scenario once with the suspend/resume
//! primitive and print what happened.
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example quickstart -- --trace-out trace.json --series-out series.json
//! ```
//!
//! `--trace-out` / `--series-out` turn the observability layer on and dump
//! the span trace (Chrome `trace_event` JSON — load it in `chrome://tracing`
//! or <https://ui.perfetto.dev>) and the sampled time series.

use hadoop_os_preempt::mrp_preempt::obs_export;
use hadoop_os_preempt::prelude::*;

fn main() {
    let (trace_out, series_out) = parse_args();
    let observe = trace_out.is_some() || series_out.is_some();

    // 1. Describe the two jobs: a low-priority tl and a high-priority th,
    //    both single-task map-only jobs over 512 MB inputs.
    let (tl, th) = two_job_scenario(0, 0);

    // 2. Build the paper's dummy scheduler: when tl reaches 50% progress,
    //    submit th and suspend tl; resume tl when th completes.
    let plan = DummyPlan::paper_scenario(PreemptionPrimitive::SuspendResume, "tl", th, 0.5);
    let scheduler = DummyScheduler::new(plan);
    let triggers = scheduler.required_triggers();

    // 3. Build the single-node cluster (4 GB RAM, one map slot, swappiness 0),
    //    create the HDFS inputs and register the progress trigger.
    let mut config = ClusterConfig::paper_single_node();
    if observe {
        config = config.with_obs(ObsConfig::full());
    }
    let mut cluster = Cluster::new(config, Box::new(scheduler));
    for (path, len) in two_job_input_files() {
        cluster.create_input_file(&path, len).expect("create input");
    }
    for (job, task, fraction) in triggers {
        cluster.add_progress_trigger(&job, task, fraction);
    }

    // 4. Submit tl and run.
    cluster.submit_job(tl);
    cluster.run(SimTime::from_secs(3_600));

    // 5. Inspect the outcome.
    let report = cluster.report();
    println!("== schedule trace ==");
    for entry in cluster.trace() {
        println!("{}", entry.to_line());
    }
    println!("\n== metrics ==");
    println!(
        "sojourn(th) = {:.1}s   makespan = {:.1}s   swap out = {} MiB   tl suspend cycles = {}",
        report.sojourn_secs("th").unwrap(),
        report.makespan_secs().unwrap(),
        report.total_swap_out_bytes() / MIB,
        report.job("tl").unwrap().tasks[0].suspend_cycles,
    );
    println!("\n== summary ==");
    print!("{}", report.summary());

    // 6. Export the observability dumps when asked to.
    if let Some(obs) = cluster.observability() {
        if let Some(path) = trace_out {
            let json = obs_export::chrome_trace_json(obs.spans(), cluster.now());
            std::fs::write(&path, json.pretty()).expect("write trace");
            println!("wrote Chrome trace ({} spans) to {path}", obs.spans().len());
        }
        if let Some(path) = series_out {
            let sampler = obs.series().expect("series sampling enabled");
            std::fs::write(&path, obs_export::series_json(sampler).pretty()).expect("write series");
            println!(
                "wrote time series ({} rows) to {path}",
                sampler.rows().len()
            );
        }
        if let Some(profile) = obs.profile() {
            println!("\n== event-loop profile ==");
            print!("{}", profile.table());
        }
    }
}

/// Parses `--trace-out <path>` and `--series-out <path>`.
fn parse_args() -> (Option<String>, Option<String>) {
    let mut trace_out = None;
    let mut series_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            "--series-out" => series_out = Some(args.next().expect("--series-out needs a path")),
            other => panic!("unknown argument `{other}` (try --trace-out/--series-out)"),
        }
    }
    (trace_out, series_out)
}
