//! Quickstart: run the paper's scenario once with the suspend/resume
//! primitive and print what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hadoop_os_preempt::prelude::*;

fn main() {
    // 1. Describe the two jobs: a low-priority tl and a high-priority th,
    //    both single-task map-only jobs over 512 MB inputs.
    let (tl, th) = two_job_scenario(0, 0);

    // 2. Build the paper's dummy scheduler: when tl reaches 50% progress,
    //    submit th and suspend tl; resume tl when th completes.
    let plan = DummyPlan::paper_scenario(PreemptionPrimitive::SuspendResume, "tl", th, 0.5);
    let scheduler = DummyScheduler::new(plan);
    let triggers = scheduler.required_triggers();

    // 3. Build the single-node cluster (4 GB RAM, one map slot, swappiness 0),
    //    create the HDFS inputs and register the progress trigger.
    let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
    for (path, len) in two_job_input_files() {
        cluster.create_input_file(&path, len).expect("create input");
    }
    for (job, task, fraction) in triggers {
        cluster.add_progress_trigger(&job, task, fraction);
    }

    // 4. Submit tl and run.
    cluster.submit_job(tl);
    cluster.run(SimTime::from_secs(3_600));

    // 5. Inspect the outcome.
    let report = cluster.report();
    println!("== schedule trace ==");
    for entry in cluster.trace() {
        println!("{}", entry.to_line());
    }
    println!("\n== metrics ==");
    println!(
        "sojourn(th) = {:.1}s   makespan = {:.1}s   swap out = {} MiB   tl suspend cycles = {}",
        report.sojourn_secs("th").unwrap(),
        report.makespan_secs().unwrap(),
        report.total_swap_out_bytes() / MIB,
        report.job("tl").unwrap().tasks[0].suspend_cycles,
    );
}
