//! Integration tests spanning the whole stack: golden-*shape* assertions for
//! every figure of the paper (orderings, factors and crossovers — not
//! absolute seconds, which depend on calibration).

use hadoop_os_preempt::prelude::*;
use mrp_experiments::{
    eviction_ablation, figure4, natjam_comparison, resume_locality_ablation, run_once,
};

fn sojourn(primitive: PreemptionPrimitive, r: f64) -> f64 {
    run_once(&ScenarioConfig::lightweight(primitive, r), 1).sojourn_th_secs
}

fn makespan(primitive: PreemptionPrimitive, r: f64) -> f64 {
    run_once(&ScenarioConfig::lightweight(primitive, r), 1).makespan_secs
}

#[test]
fn figure2a_shape_wait_falls_kill_and_susp_flat() {
    // wait: dominated by tl's remaining work, so it falls steeply with r.
    let wait_early = sojourn(PreemptionPrimitive::Wait, 0.1);
    let wait_late = sojourn(PreemptionPrimitive::Wait, 0.9);
    assert!(
        wait_early - wait_late > 40.0,
        "wait sojourn must fall with r: {wait_early} -> {wait_late}"
    );

    // kill / susp: flat (within a heartbeat) and far below wait at small r.
    for primitive in [
        PreemptionPrimitive::Kill,
        PreemptionPrimitive::SuspendResume,
    ] {
        let early = sojourn(primitive, 0.1);
        let late = sojourn(primitive, 0.9);
        assert!(
            (early - late).abs() < 10.0,
            "{primitive} sojourn should be flat: {early} vs {late}"
        );
        assert!(
            wait_early - early > 40.0,
            "{primitive} must beat wait for early arrivals"
        );
    }

    // susp is at least as good as kill at every measured point (no cleanup attempt).
    for r in [0.1, 0.3, 0.5, 0.7, 0.9] {
        assert!(
            sojourn(PreemptionPrimitive::SuspendResume, r)
                <= sojourn(PreemptionPrimitive::Kill, r) + 1.0,
            "susp must not lose to kill at r={r}"
        );
    }
}

#[test]
fn figure2b_shape_kill_makespan_grows_with_wasted_work() {
    let kill_early = makespan(PreemptionPrimitive::Kill, 0.1);
    let kill_late = makespan(PreemptionPrimitive::Kill, 0.9);
    assert!(
        kill_late - kill_early > 40.0,
        "kill makespan must grow with r"
    );

    for r in [0.1, 0.5, 0.9] {
        let wait = makespan(PreemptionPrimitive::Wait, r);
        let susp = makespan(PreemptionPrimitive::SuspendResume, r);
        let kill = makespan(PreemptionPrimitive::Kill, r);
        assert!(
            (susp - wait).abs() < 10.0,
            "susp makespan tracks wait at r={r}: {susp} vs {wait}"
        );
        assert!(kill >= susp, "kill cannot beat susp on makespan at r={r}");
    }
    // At late preemption points kill is far worse than both.
    assert!(
        makespan(PreemptionPrimitive::Kill, 0.9) - makespan(PreemptionPrimitive::Wait, 0.9) > 50.0
    );
}

#[test]
fn figure3_shape_memory_hungry_overheads_are_visible_but_bounded() {
    let state = 2 * GIB;
    let susp = run_once(
        &ScenarioConfig::memory_hungry(PreemptionPrimitive::SuspendResume, 0.5, state),
        1,
    );
    let kill = run_once(
        &ScenarioConfig::memory_hungry(PreemptionPrimitive::Kill, 0.5, state),
        1,
    );
    let wait = run_once(
        &ScenarioConfig::memory_hungry(PreemptionPrimitive::Wait, 0.5, state),
        1,
    );

    // Paging happened, and only under suspend/resume.
    assert!(susp.tl_paged_out_bytes > 0);
    assert_eq!(kill.tl_paged_out_bytes, 0);
    assert_eq!(wait.tl_paged_out_bytes, 0);

    // The worst case flips the close calls: kill's sojourn is now slightly
    // better than susp's, wait's makespan slightly better than susp's — but
    // the margins stay small (the paper calls them "marginal"), and susp
    // still beats the opposite extreme by a lot.
    assert!(susp.sojourn_th_secs >= kill.sojourn_th_secs);
    assert!(susp.sojourn_th_secs < kill.sojourn_th_secs * 1.35);
    assert!(susp.makespan_secs >= wait.makespan_secs);
    assert!(susp.makespan_secs < wait.makespan_secs * 1.25);
    assert!(wait.sojourn_th_secs > susp.sojourn_th_secs + 20.0);
    assert!(kill.makespan_secs > susp.makespan_secs + 20.0);
}

#[test]
fn figure4_shape_overheads_grow_with_memory_footprint() {
    let f = figure4(1);
    let paged = f.column("paged_bytes_MB").unwrap();
    let sojourn_overhead = f.column("sojourn_overhead_s").unwrap();
    let makespan_overhead = f.column("makespan_overhead_s").unwrap();

    // No memory, no paging, (essentially) no overhead.
    assert!(paged[0] < 10.0);
    assert!(sojourn_overhead[0].abs() < 6.0);
    // Large memory: hundreds of MB to >1 GB paged and tens of seconds of overhead.
    assert!(*paged.last().unwrap() > 800.0);
    assert!(*sojourn_overhead.last().unwrap() > 5.0);
    assert!(*makespan_overhead.last().unwrap() > 5.0);
    // Paged bytes are non-decreasing in the th footprint.
    assert!(paged.windows(2).all(|w| w[1] >= w[0] - 1.0));
    // Overheads are roughly ordered with paged bytes (linear correlation in the paper).
    assert!(sojourn_overhead.last().unwrap() > &sojourn_overhead[0]);
    assert!(makespan_overhead.last().unwrap() > &makespan_overhead[0]);
}

#[test]
fn natjam_comparison_shows_checkpointing_costs_more() {
    let f = natjam_comparison(1);
    for row in &f.rows {
        assert!(
            row[1] < row[2],
            "susp overhead {} must undercut the checkpoint model {}",
            row[1],
            row[2]
        );
    }
}

#[test]
fn eviction_ablation_smallest_memory_minimises_paging() {
    let f = eviction_ablation(1);
    let swap = f.column("swap_out_MB").unwrap();
    // Row 0 = smallest-memory victim, row 2 = largest-memory victim.
    assert!(
        swap[0] <= swap[2],
        "evicting the small task must not page more: {swap:?}"
    );
}

#[test]
fn resume_locality_crossover_favours_local_resume_at_high_progress() {
    let f = resume_locality_ablation(1);
    let local = f.column("local_resume_makespan_s").unwrap();
    let nonlocal = f.column("nonlocal_restart_makespan_s").unwrap();
    let wasted_nonlocal = f.column("nonlocal_restart_wasted_s").unwrap();
    // Restarting elsewhere always wastes work; the waste grows with progress.
    assert!(wasted_nonlocal.windows(2).all(|w| w[1] >= w[0]));
    assert!(wasted_nonlocal[0] > 1.0);
    // With little progress the non-local restart can compete (it overlaps the
    // two jobs on two nodes); with a lot of progress the local resume is no
    // worse than, or close to, the restart despite using a single node.
    let last = local.len() - 1;
    assert!(local[last] <= nonlocal[last] + 30.0);
}
