//! Offline markdown link check for the documentation surface.
//!
//! Walks `README.md`, the other root markdown files, and everything under
//! `docs/`, extracts inline `[text](target)` links, and verifies that every
//! **intra-repo** target resolves to an existing file (anchors stripped).
//! External links (`http://`, `https://`, `mailto:`) are intentionally left
//! alone — CI has no network, and dead-file links are the rot this guards
//! against. Runs as part of `cargo test` and as a dedicated CI step.

use std::path::{Path, PathBuf};

/// Extracts inline markdown link targets from `text`, skipping code fences
/// and inline code spans (ASCII-art diagrams love square brackets).
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_code = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(close) = line[i + 2..].find(')') {
                        out.push(line[i + 2..i + 2 + close].to_string());
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(root)
        .expect("repo root is readable")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    let docs = root.join("docs");
    if docs.is_dir() {
        files.extend(
            std::fs::read_dir(&docs)
                .expect("docs/ is readable")
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "md")),
        );
    }
    files.sort();
    files
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = markdown_files(root);
    assert!(
        files.iter().any(|f| f.ends_with("README.md")),
        "README.md must exist at the repo root"
    );
    assert!(
        files.iter().any(|f| f.ends_with("ARCHITECTURE.md")),
        "docs/ARCHITECTURE.md must exist"
    );

    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).expect("markdown file is readable");
        for target in link_targets(&text) {
            // External and intra-page links are out of scope for an
            // offline check.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or(&target);
            if path_part.is_empty() {
                continue;
            }
            let resolved = file
                .parent()
                .expect("markdown files have a parent dir")
                .join(path_part);
            checked += 1;
            if !resolved.exists() {
                broken.push(format!("{} -> {}", file.display(), target));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo markdown links:\n{}",
        broken.join("\n")
    );
    assert!(
        checked >= 5,
        "the docs surface should contain intra-repo links to check, found {checked}"
    );
}
