//! Cross-crate integration tests: determinism, configuration files, failure
//! injection, and the real-OS prototype (skipped where unavailable).

use hadoop_os_preempt::prelude::*;
use mrp_engine::TaskState;
use mrp_experiments::run_once;

fn paper_run(primitive: PreemptionPrimitive, seed: u64) -> ClusterReport {
    run_once(&ScenarioConfig::lightweight(primitive, 0.5), seed).report
}

#[test]
fn same_seed_is_bit_identical_different_seed_still_completes() {
    let a = paper_run(PreemptionPrimitive::SuspendResume, 7);
    let b = paper_run(PreemptionPrimitive::SuspendResume, 7);
    assert_eq!(a, b);
    let c = paper_run(PreemptionPrimitive::SuspendResume, 8);
    assert!(c.all_jobs_complete());
}

#[test]
fn dummy_plan_round_trips_through_json_config_files() {
    let (_, th) = two_job_scenario(0, 0);
    let plan = DummyPlan::paper_scenario(PreemptionPrimitive::Kill, "tl", th, 0.75);
    let json = plan.to_json();
    let parsed = DummyPlan::from_json(&json).expect("valid config");
    assert_eq!(plan, parsed);

    // A plan loaded from the config file drives the cluster exactly like the
    // original one.
    let scheduler = DummyScheduler::new(parsed);
    let triggers = scheduler.required_triggers();
    let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
    for (path, len) in two_job_input_files() {
        cluster.create_input_file(&path, len).unwrap();
    }
    for (job, task, fraction) in triggers {
        cluster.add_progress_trigger(&job, task, fraction);
    }
    cluster.submit_job(two_job_scenario(0, 0).0);
    cluster.run(SimTime::from_secs(3_600));
    let report = cluster.report();
    assert!(report.all_jobs_complete());
    assert_eq!(
        report.job("tl").unwrap().tasks[0].attempts,
        2,
        "kill primitive restarts tl"
    );
}

#[test]
fn suspend_command_racing_completion_is_harmless() {
    // Preempt at 99.9%: by the time the suspend command is piggybacked on a
    // heartbeat the task is typically finalizing or done — the protocol must
    // let it complete rather than wedging the job.
    let run = run_once(
        &ScenarioConfig::lightweight(PreemptionPrimitive::SuspendResume, 0.999),
        1,
    );
    assert!(run.report.all_jobs_complete());
    assert!(run.report.job("tl").unwrap().tasks[0].suspend_cycles <= 1);
}

#[test]
fn swap_exhaustion_triggers_the_oom_killer_without_corrupting_state() {
    // Failure injection: two 2 GiB tasks share a 4 GiB node whose swap area is
    // far too small to absorb either of them. The node cannot host both, so
    // the OOM killer fires (repeatedly -- each relaunch displaces the other,
    // the realistic outcome of such a misconfiguration). What we require is
    // that the engine stays consistent: OOM kills are recorded, the killed
    // tasks return to a schedulable state, and nothing deadlocks or panics
    // within the bounded horizon.
    use mrp_engine::{Cluster, ClusterConfig, JobSpec};
    let mut cfg = ClusterConfig::paper_single_node();
    cfg.nodes[0].map_slots = 2;
    cfg.nodes[0].os.memory.swap_capacity = 64 * MIB;
    let mut cluster = Cluster::new(cfg, Box::new(mrp_engine::FifoScheduler::new()));
    cluster.submit_job(
        JobSpec::synthetic("hog-a", 1, 256 * MIB).with_profile(TaskProfile::memory_hungry(2 * GIB)),
    );
    cluster.submit_job(
        JobSpec::synthetic("hog-b", 1, 256 * MIB).with_profile(TaskProfile::memory_hungry(2 * GIB)),
    );
    cluster.run(SimTime::from_secs(1_800));
    let report = cluster.report();
    let ooms: u64 = report.nodes.iter().map(|n| n.oom_kills).sum();
    assert!(
        ooms >= 1,
        "with 64 MiB of swap one of the 2 GiB tasks must be OOM killed"
    );
    for job in cluster.jobs().values() {
        for task in &job.tasks {
            assert!(
                matches!(
                    task.state,
                    TaskState::Pending | TaskState::Running | TaskState::Succeeded
                ),
                "{:?} left in unexpected state {:?}",
                task.id,
                task.state
            );
        }
    }

    // With a properly sized swap area the same workload completes: the
    // eviction path absorbs the pressure instead of the OOM killer.
    let mut cfg = ClusterConfig::paper_single_node();
    cfg.nodes[0].map_slots = 2;
    cfg.nodes[0].os.memory.swap_capacity = 8 * GIB;
    let mut cluster = Cluster::new(cfg, Box::new(mrp_engine::FifoScheduler::new()));
    cluster.submit_job(
        JobSpec::synthetic("hog-a", 1, 256 * MIB).with_profile(TaskProfile::memory_hungry(2 * GIB)),
    );
    cluster.submit_job(
        JobSpec::synthetic("hog-b", 1, 256 * MIB).with_profile(TaskProfile::memory_hungry(2 * GIB)),
    );
    cluster.run(SimTime::from_secs(24 * 3_600));
    let report = cluster.report();
    assert!(report.all_jobs_complete());
    assert!(report.total_swap_out_bytes() > 0);
    let ooms: u64 = report.nodes.iter().map(|n| n.oom_kills).sum();
    assert_eq!(ooms, 0);
}

#[test]
fn preemptive_scheduler_keeps_task_states_consistent() {
    // Drive the HFSP scheduler over a small workload and check the engine's
    // bookkeeping stays consistent at the end: every task succeeded, nothing
    // is left suspended, no slot leaked (checked implicitly by completion).
    let mut cluster = Cluster::new(
        ClusterConfig::small_cluster(2, 1, 1),
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    cluster.submit_job(JobSpec::synthetic("large", 4, 512 * MIB));
    cluster.submit_job_at(
        JobSpec::synthetic("small", 1, 128 * MIB),
        SimTime::from_secs(30),
    );
    cluster.submit_job_at(
        JobSpec::synthetic("tiny", 1, 64 * MIB),
        SimTime::from_secs(60),
    );
    cluster.run(SimTime::from_secs(24 * 3_600));
    for job in cluster.jobs().values() {
        for task in &job.tasks {
            assert_eq!(
                task.state,
                TaskState::Succeeded,
                "{:?} ended as {:?}",
                task.id,
                task.state
            );
            assert!((task.progress - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn real_os_prototype_round_trip() {
    if !mrp_oschild::prototype_supported() {
        eprintln!("skipping real-OS prototype test: unsupported platform");
        return;
    }
    let worker = match mrp_oschild::WorkerProcess::spawn_busy_loop() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("skipping real-OS prototype test: {e}");
            return;
        }
    };
    let rt = match worker.suspend_resume_roundtrip() {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("skipping real-OS prototype test: {e}");
            return;
        }
    };
    assert!(rt.suspend_latency.as_millis() < 1_000);
    assert!(rt.resume_latency.as_millis() < 1_000);
    worker.kill().unwrap();
}
