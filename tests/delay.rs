//! Delay-scheduling integration tests: wait/escalation behavior, skip-state
//! resets, interaction with FAIR deficit tracking and fault injection, and
//! a pinned fixed-seed locality-rate regression.

use hadoop_os_preempt::prelude::*;
use mrp_engine::{
    Cluster, FaultEvent, FaultKind, JobId, NodeId, RackId, RefreshMode, SchedulerPolicy,
};
use mrp_sim::{SimRng, SimTime};

fn hfsp() -> Box<dyn SchedulerPolicy> {
    Box::new(HfspScheduler::new(
        PreemptionPrimitive::SuspendResume,
        EvictionPolicy::ClosestToCompletion,
    ))
}

/// All four blocks of the input live on node 3, which has enough slots for
/// the whole job: with delay scheduling every map waits for (and gets) a
/// node-local launch, while greedy placement lets earlier-heartbeating
/// nodes steal the work off-node. The last local launch resets the job's
/// skip counter (reset-on-local-launch).
#[test]
fn delay_waits_for_node_local_slots_and_resets_on_local_launch() {
    let run = |delay: bool| {
        let mut cfg = mrp_engine::ClusterConfig::racked_cluster(2, 2, 4, 1);
        cfg.dfs_replication = 1;
        if delay {
            cfg = cfg.with_delay_intervals(1.0, 1.0);
        }
        let mut c = Cluster::new(cfg, hfsp());
        c.create_input_file_from("/pinned", 512 * MIB, Some(NodeId(3)))
            .unwrap();
        c.submit_job(JobSpec::map_only("pinned", "/pinned"));
        c.run(SimTime::from_secs(4 * 3_600));
        c
    };

    let greedy = run(false);
    let greedy_report = greedy.report();
    assert!(greedy_report.all_jobs_complete());
    assert!(
        greedy_report.locality.node_local < 4,
        "greedy placement must lose locality for this test to mean anything: {:?}",
        greedy_report.locality
    );
    assert_eq!(greedy_report.locality.delayed_skips, 0);

    let delayed = run(true);
    let report = delayed.report();
    assert!(report.all_jobs_complete());
    assert_eq!(
        report.locality.node_local, 4,
        "all four maps must wait for the replica holder: {:?}",
        report.locality
    );
    assert!(
        report.locality.delayed_skips > 0,
        "earlier-heartbeating nodes must have been declined"
    );
    assert!(
        report.locality.delay_waits_total() >= 1,
        "paid waits end in node-local launches: {:?}",
        report.locality.delay_wait_hist
    );
    // Reset-on-local-launch: the job's last map launched node-local, so its
    // skip counter is zero and no wait clock is running.
    let sb = delayed.delay_scoreboard();
    assert_eq!(sb.job_skips(JobId(1)), 0);
    assert!(!sb.job_waiting(JobId(1)));
    assert_eq!(sb.total_skips(), report.locality.delayed_skips);
}

/// Every replica holder of the job's pending tasks dies mid-wait:
/// node-local placement becomes impossible (task `preferred_nodes` are
/// captured at registration and the holders never return). The wait clock
/// still escalates node → rack → any purely with time, so the job drains
/// off-rack instead of livelocking — a dead node must not strand the job's
/// skip counter.
#[test]
fn delay_escalates_past_rack_to_any_when_holders_are_dead() {
    let mut cfg = mrp_engine::ClusterConfig::racked_cluster(2, 2, 1, 1);
    cfg.dfs_replication = 1;
    cfg = cfg.with_delay_intervals(1.0, 1.0);
    // Rack 1 (nodes 2 and 3, the only replica holders) dies mid-run and
    // never returns.
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(10),
        kind: FaultKind::RackOutage { rack: RackId(1) },
    });
    let mut c = Cluster::new(cfg, hfsp());
    c.create_input_file_from("/doomed", 256 * MIB, Some(NodeId(3)))
        .unwrap();
    c.submit_job(JobSpec::map_only("doomed", "/doomed"));
    c.run(SimTime::from_secs(4 * 3_600));
    let report = c.report();
    assert!(
        report.all_jobs_complete(),
        "escalation must drain the job despite dead holders"
    );
    // Before the outage node 3's single slot serves one map node-local (the
    // attempt dies with the rack); afterwards every remaining launch wants
    // node 3, declines the rack-0 offers, and escalates to off-rack.
    assert_eq!(report.locality.node_local, 1, "{:?}", report.locality);
    assert_eq!(
        report.locality.off_rack, 2,
        "both final launches end up off-rack: {:?}",
        report.locality
    );
    assert!(report.faults.attempts_lost >= 1, "{:?}", report.faults);
    assert!(
        report.locality.delayed_skips > 0,
        "the job declined rack-0 slots while waiting"
    );
    // Only the pre-outage node-local launch ended a wait; the post-outage
    // waits ran to full escalation without ever resetting.
    assert_eq!(report.locality.delay_waits_total(), 1);
}

/// A job waiting by its own choice must not count as starved: FAIR's
/// deficit tracking would otherwise preempt victim after victim to free
/// slots the waiting job keeps declining. One preemption (for the first,
/// genuinely-starved offer) is legitimate; churning past it is the bug.
#[test]
fn delay_blocked_job_is_not_starved_for_fair_preemption() {
    let run = |delay: bool| {
        // Two racks of one node each, one map slot per node. The hog fills
        // both slots; the latecomer's single block lives on node 0 only.
        let mut cfg = mrp_engine::ClusterConfig::racked_cluster(2, 1, 1, 0);
        cfg.dfs_replication = 1;
        if delay {
            // Long waits so the gate (not escalation) is what matters.
            cfg = cfg.with_delay_intervals(4.0, 4.0);
        }
        let scheduler = FairScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::LeastProgress,
            2,
            mrp_sim::SimDuration::from_secs(5),
        );
        let mut c = Cluster::new(cfg, Box::new(scheduler));
        c.create_input_file_from("/late", 128 * MIB, Some(NodeId(0)))
            .unwrap();
        c.submit_job(JobSpec::synthetic("hog", 8, 256 * MIB));
        c.submit_job_at(JobSpec::map_only("late", "/late"), SimTime::from_secs(10));
        c.run(SimTime::from_secs(8 * 3_600));
        let report = c.report();
        assert!(report.all_jobs_complete());
        report
    };
    for delay in [false, true] {
        let report = run(delay);
        let suspends: u32 = report
            .jobs
            .iter()
            .flat_map(|j| j.tasks.iter())
            .map(|t| t.suspend_cycles)
            .sum();
        assert!(
            suspends <= 2,
            "FAIR must not churn-preempt for a waiting job (delay={delay}): \
             {suspends} suspends"
        );
    }
}

/// A delay-restricted job in pure reduce phase must still recover a reduce
/// killed back to pending behind the tier-3 cursor. The delay gate only
/// ever withholds *map* launches, so a job with no schedulable maps is
/// unrestricted — were it treated as restricted, the cursor rewind would
/// stay suppressed and (because a job without schedulable maps never
/// declines anything) its wait clock could never escalate: the reduce
/// would be stranded forever.
#[test]
fn killed_reduce_of_delay_restricted_job_is_recovered() {
    let mut cfg = mrp_engine::ClusterConfig::racked_cluster(2, 2, 1, 1);
    cfg.dfs_replication = 1;
    cfg = cfg.with_delay_intervals(2.0, 2.0);
    // By t=15 the single map is running node-local on node 0
    // (schedulable_maps == 0) and all four reduces are mid-flight with the
    // tier-3 cursor past them: killing node 1 sends its reduce back to
    // pending *behind* the cursor.
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(15),
        kind: FaultKind::Kill { node: NodeId(1) },
    });
    let mut c = Cluster::new(cfg, hfsp());
    c.create_input_file_from("/mr", 128 * MIB, Some(NodeId(0)))
        .unwrap();
    // A 3x output ratio makes each reduce shuffle ~96 MiB: a minute of
    // work, so the kill lands mid-reduce.
    let profile = TaskProfile {
        output_ratio: Some(3.0),
        ..TaskProfile::default()
    };
    c.submit_job(
        JobSpec::map_only("mr", "/mr")
            .with_reduces(4)
            .with_profile(profile),
    );
    let end = c.run(SimTime::from_secs(4 * 3_600));
    let report = c.report();
    assert!(
        report.all_jobs_complete(),
        "a killed-back reduce must be relaunched, not stranded (ended at {end:?}): {:?}",
        report.faults
    );
    assert_eq!(
        report.faults.node_failures, 1,
        "the kill must actually fire"
    );
    assert!(report.faults.attempts_lost >= 1, "{:?}", report.faults);
}

/// Sharded and full view refresh must stay observationally identical with
/// delay scheduling enabled on DFS-backed jobs, including under fault
/// churn — the delay scoreboard is driven only by policy decisions, which
/// must not depend on the refresh strategy.
#[test]
fn sharded_equals_full_with_delay_and_faults() {
    for case in 0..5u64 {
        let mut rng = SimRng::new(0xDE1A + case);
        let racks = 2 + rng.index(3) as u32;
        let per_rack = 2 + rng.index(3) as u32;
        let nodes = racks * per_rack;
        let job_count = 3 + rng.index(4);
        let mut jobs = Vec::new();
        for i in 0..job_count {
            let size_mib = 128 + rng.index(512) as u64;
            let arrival = rng.index(60) as u64;
            let writer = rng.index(nodes as usize) as u32;
            jobs.push((i, size_mib, arrival, writer));
        }
        let with_faults = rng.chance(0.5);
        let run = |mode: RefreshMode| {
            let mut cfg = mrp_engine::ClusterConfig::racked_cluster(racks, per_rack, 2, 1);
            cfg.refresh_mode = mode;
            cfg.trace_level = mrp_engine::TraceLevel::Off;
            cfg = cfg.with_delay_intervals(1.0, 1.0);
            if with_faults {
                cfg.faults.random = Some(mrp_engine::RandomFaults {
                    rack_mtbf_secs: 60.0,
                    mean_recovery_secs: Some(30.0),
                    horizon: SimTime::from_secs(300),
                    seed: 0xFADE + case,
                });
            }
            let mut cluster = Cluster::new(cfg, hfsp());
            for &(i, size_mib, arrival, writer) in &jobs {
                let path = format!("/in-{i}");
                cluster
                    .create_input_file_from(&path, size_mib * MIB, Some(NodeId(writer)))
                    .unwrap();
                cluster.submit_job_at(
                    JobSpec::map_only(format!("job-{i}"), path),
                    SimTime::from_secs(arrival),
                );
            }
            cluster.run(SimTime::from_secs(24 * 3_600));
            (cluster.events_processed(), cluster.report())
        };
        let sharded = run(RefreshMode::Sharded);
        let full = run(RefreshMode::Full);
        assert!(sharded.1.all_jobs_complete(), "case {case} must complete");
        assert_eq!(
            sharded, full,
            "sharded vs full refresh diverged with delay scheduling in case {case}"
        );
    }
}

/// Pinned fixed-seed locality-rate regression: the exact locality split of
/// a delay-scheduled multi-rack run. Any change to the delay decision
/// logic, the wait thresholds' interpretation, or the tier gating shows up
/// here immediately.
#[test]
fn fixed_seed_delay_locality_rate_is_pinned() {
    let run = || {
        let mut cfg = mrp_engine::ClusterConfig::racked_cluster(4, 4, 2, 1);
        cfg.dfs_replication = 2;
        cfg = cfg.with_delay_intervals(1.0, 1.0);
        let mut cluster = Cluster::new(cfg, hfsp());
        for i in 0..6u32 {
            let path = format!("/delayed/in-{i}");
            cluster
                .create_input_file_from(&path, 384 * MIB, Some(NodeId((i * 5) % 16)))
                .unwrap();
            cluster.submit_job_at(
                JobSpec::map_only(format!("job-{i}"), path),
                SimTime::from_secs(u64::from(4 * i)),
            );
        }
        cluster.run(SimTime::from_secs(24 * 3_600));
        (cluster.events_processed(), cluster.report())
    };
    let (events, report) = run();
    assert!(report.all_jobs_complete());
    assert_eq!(report.locality.total(), 18, "6 jobs x 3 blocks");
    // The same scenario without delay lands at (7, 10, 1) — pinned in
    // tests/determinism.rs. Delay scheduling must lift the node-local
    // count decisively.
    assert_eq!(
        (
            report.locality.node_local,
            report.locality.rack_local,
            report.locality.off_rack
        ),
        PINNED_DELAY_LOCALITY
    );
    assert_eq!(events, PINNED_DELAY_EVENTS);
    assert_eq!(report.finished_at.as_micros(), PINNED_DELAY_FINISH);
    assert!(report.locality.delayed_skips > 0);

    let (events_again, report_again) = run();
    assert_eq!(events, events_again);
    assert_eq!(report, report_again);
}

const PINNED_DELAY_LOCALITY: (u64, u64, u64) = (18, 0, 0);
const PINNED_DELAY_EVENTS: u64 = 323;
const PINNED_DELAY_FINISH: u64 = 46_122_516;
