//! Golden fixed-seed determinism tests.
//!
//! The allocation-lean core refactor (slab/generation event queue, dirty-
//! tracked scheduler views, per-node command index, incremental completion
//! counting) and the rack-sharded engine (per-rack dirty lists and free-slot
//! counters, rack-aware assignment, interval-spread heartbeat staggering)
//! must not change *what* the simulator computes, only how fast. These tests
//! pin concrete fixed-seed outcomes so any future change to the hot path
//! that perturbs scheduling order or timing is caught immediately — the same
//! role a golden `ClusterReport` diff would play.

use hadoop_os_preempt::prelude::*;
use mrp_engine::{
    Cluster, DetectorConfig, FaultEvent, FaultKind, NodeId, RackId, RandomFaults, RefreshMode,
    ReliabilityConfig, ShuffleConfig, SpeculationConfig, SwapConfig,
};
use mrp_experiments::{run_memory_pressure, run_once, MemoryPressureConfig};
use mrp_sim::{SimRng, SimTime};

#[test]
fn fixed_seed_paper_scenario_is_pinned() {
    let run = run_once(
        &ScenarioConfig::lightweight(PreemptionPrimitive::SuspendResume, 0.5),
        1,
    );
    // Exact values recorded from the rack-sharded core (identical in debug
    // and release builds; the clock is integer microseconds throughout).
    // The first heartbeat of a single-node cluster now lands at 1.5s (evenly
    // spread over one interval) instead of the old fixed 200ms, which shifts
    // the schedule by 1.3s against the PR-1 pins.
    assert_eq!(run.report.finished_at.as_micros(), 163_162_486);
    assert_eq!(run.sojourn_th_secs, 81.622_288);
    assert_eq!(run.makespan_secs, 163.162_486);
    assert_eq!(run.tl_suspend_cycles, 1);
    assert_eq!(run.tl_attempts, 1);
    assert_eq!(run.swap_out_bytes, 0);
}

fn churn_cluster() -> Cluster {
    churn_cluster_cfg(ClusterConfig::small_cluster(8, 2, 1))
}

fn churn_cluster_cfg(cfg: ClusterConfig) -> Cluster {
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    for i in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("batch-{i}"), 20, 64 * MIB),
            SimTime::from_secs(u64::from(i)),
        );
    }
    for i in 0..6u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{i}"), 2, 16 * MIB),
            SimTime::from_secs(10 + 5 * u64::from(i)),
        );
    }
    cluster
}

#[test]
fn fixed_seed_preemption_churn_run_is_pinned() {
    let mut cluster = churn_cluster();
    cluster.run(SimTime::from_secs(24 * 3_600));
    let report = cluster.report();
    assert!(report.all_jobs_complete());
    let suspends: u32 = report
        .jobs
        .iter()
        .flat_map(|j| j.tasks.iter())
        .map(|t| t.suspend_cycles)
        .sum();
    // Pinned fixed-seed outcome of the HFSP suspend/resume churn scenario
    // (re-recorded for the rack-sharded engine's heartbeat staggering).
    assert_eq!(cluster.events_processed(), 605);
    assert_eq!(report.finished_at.as_micros(), 83_340_102);
    assert_eq!(suspends, 6);
    // Synthetic tasks have no placement preference: every launch counts as
    // node-local by definition.
    assert_eq!(report.locality.total(), 92);
    assert_eq!(report.locality.node_local, 92);

    // And the run is bit-for-bit repeatable within the same binary.
    let mut again = churn_cluster();
    again.run(SimTime::from_secs(24 * 3_600));
    assert_eq!(again.report(), report);
    assert_eq!(again.events_processed(), cluster.events_processed());
}

/// A 4-rack / 16-node HFSP cluster with DFS-backed jobs whose first replicas
/// are spread over the racks, so launches land in all three locality buckets.
fn racked_cluster() -> Cluster {
    let mut cfg = ClusterConfig::racked_cluster(4, 4, 2, 1);
    cfg.dfs_replication = 2;
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    for i in 0..6u32 {
        let path = format!("/racked/in-{i}");
        cluster
            .create_input_file_from(&path, 384 * MIB, Some(NodeId((i * 5) % 16)))
            .unwrap();
        cluster.submit_job_at(
            JobSpec::map_only(format!("job-{i}"), path),
            SimTime::from_secs(u64::from(4 * i)),
        );
    }
    cluster
}

const PINNED_RACKED_EVENTS: u64 = 310;
const PINNED_RACKED_FINISH: u64 = 43_828_399;
const PINNED_RACKED_LOCALITY: (u64, u64, u64) = (7, 10, 1);

#[test]
fn fixed_seed_multi_rack_run_is_pinned() {
    let mut cluster = racked_cluster();
    cluster.run(SimTime::from_secs(24 * 3_600));
    let report = cluster.report();
    assert!(report.all_jobs_complete());
    // Pinned fixed-seed outcome of the multi-rack scenario, including the
    // exact locality split (6 jobs x 3 blocks = 18 map launches).
    assert_eq!(report.locality.total(), 18);
    assert_eq!(cluster.events_processed(), PINNED_RACKED_EVENTS);
    assert_eq!(report.finished_at.as_micros(), PINNED_RACKED_FINISH);
    assert_eq!(
        (
            report.locality.node_local,
            report.locality.rack_local,
            report.locality.off_rack
        ),
        PINNED_RACKED_LOCALITY
    );
    assert!(
        report.locality.rack_local + report.locality.off_rack > 0,
        "a multi-rack run must exercise remote launches"
    );

    let mut again = racked_cluster();
    again.run(SimTime::from_secs(24 * 3_600));
    assert_eq!(again.report(), report);
}

/// Fixed-seed pinned outcome of a fault-injection churn scenario: HFSP
/// suspend/resume with speculation enabled, scripted node kill/rejoin and a
/// rack outage, plus seeded random MTBF churn. Pins the exact event count,
/// finish time and fault counters so any change to the fault paths (teardown
/// order, re-replication draws, speculation triggering) is caught
/// immediately.
fn fault_churn_cluster() -> Cluster {
    fault_churn_cluster_cfg(fault_churn_config())
}

fn fault_churn_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::racked_cluster(3, 4, 1, 1);
    cfg.trace_level = mrp_engine::TraceLevel::Off;
    cfg.speculation = SpeculationConfig::enabled();
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(30),
        kind: FaultKind::Kill { node: NodeId(5) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(70),
        kind: FaultKind::Rejoin { node: NodeId(5) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(45),
        kind: FaultKind::RackOutage { rack: RackId(2) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(95),
        kind: FaultKind::RackRejoin { rack: RackId(2) },
    });
    cfg.faults.random = Some(RandomFaults {
        rack_mtbf_secs: 80.0,
        mean_recovery_secs: Some(40.0),
        horizon: SimTime::from_secs(400),
        seed: 0xC0FFEE,
    });
    cfg
}

fn fault_churn_cluster_cfg(cfg: ClusterConfig) -> Cluster {
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    for i in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("batch-{i}"), 18, 96 * MIB),
            SimTime::from_secs(u64::from(i)),
        );
    }
    for i in 0..6u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{i}"), 2, 16 * MIB),
            SimTime::from_secs(12 + 9 * u64::from(i)),
        );
    }
    cluster
}

#[test]
fn fixed_seed_fault_churn_run_is_pinned() {
    let mut cluster = fault_churn_cluster();
    cluster.run(SimTime::from_secs(24 * 3_600));
    let report = cluster.report();
    assert!(report.all_jobs_complete());
    let faults = report.faults;
    // Scripted events all fired (1 kill + 4-node rack outage, matching
    // rejoins) on top of the random churn.
    assert!(faults.node_failures >= 5, "{faults:?}");
    assert!(faults.node_rejoins >= 5, "{faults:?}");
    assert!(faults.re_executed_tasks >= 1, "{faults:?}");
    // Pinned fixed-seed outcome (see PINNED_FAULT_* below).
    assert_eq!(cluster.events_processed(), PINNED_FAULT_EVENTS);
    assert_eq!(report.finished_at.as_micros(), PINNED_FAULT_FINISH);
    assert_eq!(
        (faults.node_failures, faults.re_executed_tasks),
        PINNED_FAULT_COUNTS
    );

    let mut again = fault_churn_cluster();
    again.run(SimTime::from_secs(24 * 3_600));
    assert_eq!(again.report(), report);
    assert_eq!(again.events_processed(), cluster.events_processed());
}

const PINNED_FAULT_EVENTS: u64 = 1_059;
const PINNED_FAULT_FINISH: u64 = 169_811_893;
const PINNED_FAULT_COUNTS: (u64, u64) = (12, 12);

/// Fixed-seed pinned outcome of the combined robustness surface: map/reduce
/// jobs with fault-tolerant shuffle (map-output registry, re-fetch backoff),
/// the ATLAS-style reliability predictor, delay scheduling *and* speculation,
/// under a scripted rack outage plus random churn. Pins the exact event
/// count, finish time and the new shuffle fault counters so any change to
/// the shuffle fault path (registry teardown order, backoff draws,
/// placement bias) is caught immediately.
fn shuffle_outage_cluster() -> Cluster {
    let mut cfg = ClusterConfig::racked_cluster(3, 4, 2, 1).with_delay_intervals(1.0, 1.0);
    cfg.trace_level = mrp_engine::TraceLevel::Off;
    cfg.speculation = SpeculationConfig::enabled();
    cfg.shuffle = ShuffleConfig::fault_tolerant();
    cfg.reliability = ReliabilityConfig::predictive();
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(40),
        kind: FaultKind::RackOutage { rack: RackId(1) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(100),
        kind: FaultKind::RackRejoin { rack: RackId(1) },
    });
    cfg.faults.random = Some(RandomFaults {
        rack_mtbf_secs: 90.0,
        mean_recovery_secs: Some(40.0),
        horizon: SimTime::from_secs(400),
        seed: 0xB0B0,
    });
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    for i in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("mr-{i}"), 12, 96 * MIB).with_reduces(3),
            SimTime::from_secs(u64::from(2 * i)),
        );
    }
    for i in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{i}"), 3, 16 * MIB).with_reduces(1),
            SimTime::from_secs(15 + 11 * u64::from(i)),
        );
    }
    cluster
}

#[test]
fn fixed_seed_shuffle_outage_run_is_pinned() {
    let mut cluster = shuffle_outage_cluster();
    cluster.run(SimTime::from_secs(24 * 3_600));
    let report = cluster.report();
    assert!(report.all_jobs_complete());
    let faults = report.faults;
    // The outage must exercise the whole shuffle fault path: committed map
    // outputs die with the rack, stalled reduces re-fetch with backoff, and
    // the affected maps re-execute.
    assert!(faults.lost_map_outputs >= 1, "{faults:?}");
    assert!(faults.shuffle_refetches >= 1, "{faults:?}");
    assert!(
        faults.re_executed_tasks >= faults.lost_map_outputs,
        "{faults:?}"
    );
    // Pinned fixed-seed outcome (see PINNED_SHUFFLE_* below).
    assert_eq!(cluster.events_processed(), PINNED_SHUFFLE_EVENTS);
    assert_eq!(report.finished_at.as_micros(), PINNED_SHUFFLE_FINISH);
    assert_eq!(
        (faults.lost_map_outputs, faults.shuffle_refetches),
        PINNED_SHUFFLE_COUNTS
    );

    let mut again = shuffle_outage_cluster();
    again.run(SimTime::from_secs(24 * 3_600));
    assert_eq!(again.report(), report);
    assert_eq!(again.events_processed(), cluster.events_processed());
}

const PINNED_SHUFFLE_EVENTS: u64 = 751;
const PINNED_SHUFFLE_FINISH: u64 = 79_687_322;
const PINNED_SHUFFLE_COUNTS: (u64, u64) = (4, 74);

/// The rack-sharded refresh path must also be observationally identical to
/// the naive reference *under fault injection*: node teardown, rejoin,
/// re-replication and speculative re-execution all mutate the incremental
/// indexes (RackView counters, PendingTotals, per-job counters, dirty
/// lists), and none of it may depend on the refresh strategy.
#[test]
fn sharded_and_full_refresh_match_under_fault_injection() {
    for case in 0..6u64 {
        let mut rng = SimRng::new(0xFA57 + case);
        let racks = 2 + rng.index(3) as u32; // 2..=4
        let per_rack = 2 + rng.index(3) as u32; // 2..=4
        let job_count = 3 + rng.index(4); // 3..=6
        let mut jobs = Vec::new();
        for i in 0..job_count {
            let tasks = 2 + rng.index(12) as u32;
            let arrival = rng.index(40) as u64;
            jobs.push((i, tasks, arrival));
        }
        let mtbf = 30.0 + rng.index(60) as f64;
        let use_speculation = rng.chance(0.5);
        let run = |mode: RefreshMode| {
            let mut cfg = ClusterConfig::racked_cluster(racks, per_rack, 2, 1);
            cfg.refresh_mode = mode;
            cfg.trace_level = mrp_engine::TraceLevel::Off;
            if use_speculation {
                cfg.speculation = SpeculationConfig::enabled();
            }
            cfg.faults.random = Some(RandomFaults {
                rack_mtbf_secs: mtbf,
                mean_recovery_secs: Some(25.0),
                horizon: SimTime::from_secs(500),
                seed: 0xFEE7 + case,
            });
            let mut cluster = Cluster::new(
                cfg,
                Box::new(HfspScheduler::new(
                    PreemptionPrimitive::SuspendResume,
                    EvictionPolicy::ClosestToCompletion,
                )),
            );
            for &(i, tasks, arrival) in &jobs {
                cluster.submit_job_at(
                    JobSpec::synthetic(format!("job-{i}"), tasks, 64 * MIB),
                    SimTime::from_secs(arrival),
                );
            }
            cluster.run(SimTime::from_secs(24 * 3_600));
            (cluster.events_processed(), cluster.report())
        };
        let sharded = run(RefreshMode::Sharded);
        let full = run(RefreshMode::Full);
        assert!(sharded.1.all_jobs_complete(), "case {case} must complete");
        assert_eq!(
            sharded, full,
            "sharded vs full refresh diverged under faults in case {case}"
        );
    }
}

/// ...and identical once more with this PR's shuffle fault domain switched
/// on: map-output registry teardown, shuffle re-fetch backoff scheduling,
/// reliability-biased placement, rack-aware reduce placement and delay
/// scheduling all interact with the incremental indexes, and none of it may
/// depend on the refresh strategy.
#[test]
fn sharded_and_full_refresh_match_under_shuffle_fault_paths() {
    for case in 0..6u64 {
        let mut rng = SimRng::new(0x5F1E + case);
        let racks = 2 + rng.index(3) as u32; // 2..=4
        let per_rack = 2 + rng.index(3) as u32; // 2..=4
        let job_count = 3 + rng.index(4); // 3..=6
        let mut jobs = Vec::new();
        for i in 0..job_count {
            let tasks = 2 + rng.index(10) as u32;
            let reduces = rng.index(4) as u32; // 0..=3
            let arrival = rng.index(40) as u64;
            jobs.push((i, tasks, reduces, arrival));
        }
        let outage_rack = rng.index(racks as usize) as u32;
        let mtbf = 40.0 + rng.index(60) as f64;
        let use_delay = rng.chance(0.5);
        let use_predictor = rng.chance(0.67);
        let run = |mode: RefreshMode| {
            let mut cfg = ClusterConfig::racked_cluster(racks, per_rack, 2, 1);
            if use_delay {
                cfg = cfg.with_delay_intervals(1.0, 1.0);
            }
            cfg.refresh_mode = mode;
            cfg.trace_level = mrp_engine::TraceLevel::Off;
            cfg.speculation = SpeculationConfig::enabled();
            cfg.shuffle = ShuffleConfig::fault_tolerant();
            if use_predictor {
                cfg.reliability = ReliabilityConfig::predictive();
            }
            cfg.faults.events.push(FaultEvent {
                at: SimTime::from_secs(35),
                kind: FaultKind::RackOutage {
                    rack: RackId(outage_rack),
                },
            });
            cfg.faults.events.push(FaultEvent {
                at: SimTime::from_secs(90),
                kind: FaultKind::RackRejoin {
                    rack: RackId(outage_rack),
                },
            });
            cfg.faults.random = Some(RandomFaults {
                rack_mtbf_secs: mtbf,
                mean_recovery_secs: Some(30.0),
                horizon: SimTime::from_secs(400),
                seed: 0xD1CE + case,
            });
            let mut cluster = Cluster::new(
                cfg,
                Box::new(HfspScheduler::new(
                    PreemptionPrimitive::SuspendResume,
                    EvictionPolicy::ClosestToCompletion,
                )),
            );
            for &(i, tasks, reduces, arrival) in &jobs {
                cluster.submit_job_at(
                    JobSpec::synthetic(format!("job-{i}"), tasks, 64 * MIB).with_reduces(reduces),
                    SimTime::from_secs(arrival),
                );
            }
            cluster.run(SimTime::from_secs(24 * 3_600));
            (cluster.events_processed(), cluster.report())
        };
        let sharded = run(RefreshMode::Sharded);
        let full = run(RefreshMode::Full);
        assert!(sharded.1.all_jobs_complete(), "case {case} must complete");
        assert_eq!(
            sharded, full,
            "sharded vs full refresh diverged under shuffle faults in case {case}"
        );
    }
}

/// Fixed-seed pinned outcome of the full robustness surface this PR adds:
/// suspicion-based failure detection (3 missed heartbeats), a healable node
/// partition, a healable rack partition, a gray-failed node (slow disk and
/// NIC), a detector-deferred kill — on top of delay scheduling, speculation,
/// fault-tolerant shuffle and the reliability predictor. Pins the exact
/// event count, finish time and the new detector/partition counters so any
/// change to suspicion timing, teardown order or heal reconciliation is
/// caught immediately.
fn detector_partition_cluster() -> Cluster {
    let mut cfg = ClusterConfig::racked_cluster(3, 4, 1, 1).with_delay_intervals(1.0, 1.0);
    cfg.trace_level = mrp_engine::TraceLevel::Off;
    cfg.speculation = SpeculationConfig::enabled();
    cfg.shuffle = ShuffleConfig::fault_tolerant();
    cfg.reliability = ReliabilityConfig::predictive();
    cfg.detector = DetectorConfig::enabled();
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(10),
        kind: FaultKind::Gray {
            node: NodeId(2),
            slow_disk: 3.0,
            slow_net: 2.0,
        },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(30),
        kind: FaultKind::Partition { node: NodeId(5) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(90),
        kind: FaultKind::PartitionHeal { node: NodeId(5) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(50),
        kind: FaultKind::RackPartition { rack: RackId(2) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(120),
        kind: FaultKind::RackPartitionHeal { rack: RackId(2) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(60),
        kind: FaultKind::Kill { node: NodeId(7) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(140),
        kind: FaultKind::Rejoin { node: NodeId(7) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(200),
        kind: FaultKind::GrayHeal { node: NodeId(2) },
    });
    let mut cluster = Cluster::new(
        cfg,
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    for i in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("mr-{i}"), 14, 96 * MIB).with_reduces(2),
            SimTime::from_secs(u64::from(2 * i)),
        );
    }
    for i in 0..5u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{i}"), 2, 16 * MIB),
            SimTime::from_secs(15 + 9 * u64::from(i)),
        );
    }
    cluster
}

#[test]
fn fixed_seed_detector_partition_run_is_pinned() {
    let mut cluster = detector_partition_cluster();
    cluster.run(SimTime::from_secs(24 * 3_600));
    let report = cluster.report();
    assert!(report.all_jobs_complete());
    let faults = report.faults;
    // Every family fired: 5 partitions (1 node + 4 rack members) all healed,
    // the kill was suspected and confirmed only after the heartbeat timeout,
    // and the gray node degraded and healed.
    assert_eq!(faults.partitions, 5, "{faults:?}");
    assert_eq!(faults.partition_heals, 5, "{faults:?}");
    assert_eq!(faults.gray_failures, 1, "{faults:?}");
    assert_eq!(faults.gray_heals, 1, "{faults:?}");
    assert!(faults.nodes_suspected >= 1, "{faults:?}");
    assert!(faults.failures_detected >= 1, "{faults:?}");
    assert!(faults.detection_lag_secs_max > 0.0, "{faults:?}");
    // Detection lag is bounded by the suspicion timeout plus one heartbeat
    // interval (the anchor is the last delivered heartbeat).
    assert!(
        faults.detection_lag_secs_max <= 3.0 * 3.0 + 3.0,
        "{faults:?}"
    );
    // First-commit-wins: reconciliation ran, duplicates never happen.
    assert_eq!(faults.duplicate_commits, 0);
    // Pinned fixed-seed outcome (see PINNED_DETECTOR_* below).
    assert_eq!(cluster.events_processed(), PINNED_DETECTOR_EVENTS);
    assert_eq!(report.finished_at.as_micros(), PINNED_DETECTOR_FINISH);
    assert_eq!(
        (faults.nodes_suspected, faults.failures_detected),
        PINNED_DETECTOR_COUNTS
    );
    assert_eq!(
        faults.reconciled_commits + faults.reconciled_discards,
        PINNED_DETECTOR_RECONCILED
    );

    let mut again = detector_partition_cluster();
    again.run(SimTime::from_secs(24 * 3_600));
    assert_eq!(again.report(), report);
    assert_eq!(again.events_processed(), cluster.events_processed());
}

const PINNED_DETECTOR_EVENTS: u64 = 1_534;
const PINNED_DETECTOR_FINISH: u64 = 262_341_232;
const PINNED_DETECTOR_COUNTS: (u64, u64) = (6, 6);
const PINNED_DETECTOR_RECONCILED: u64 = 8;

/// ...and the sharded refresh must stay observationally identical to the
/// naive reference with the detector, partitions and gray failures switched
/// on: deferred teardown, partition buffering, heal reconciliation and
/// unreachable-node view filtering all mutate the incremental indexes.
#[test]
fn sharded_and_full_refresh_match_under_detector_and_partitions() {
    for case in 0..6u64 {
        let mut rng = SimRng::new(0xDE7EC7 + case);
        let racks = 2 + rng.index(3) as u32; // 2..=4
        let per_rack = 2 + rng.index(3) as u32; // 2..=4
        let nodes = racks * per_rack;
        let job_count = 3 + rng.index(4); // 3..=6
        let mut jobs = Vec::new();
        for i in 0..job_count {
            let tasks = 2 + rng.index(10) as u32;
            let reduces = rng.index(3) as u32; // 0..=2
            let arrival = rng.index(40) as u64;
            jobs.push((i, tasks, reduces, arrival));
        }
        let victim = rng.index(nodes as usize) as u32;
        let partition_at = 20 + rng.index(30) as u64;
        let heal_at = partition_at + 5 + rng.index(90) as u64;
        let gray_node = rng.index(nodes as usize) as u32;
        let slow_disk = 1.5 + rng.index(3) as f64;
        let use_grace = rng.chance(0.5);
        let mtbf = 50.0 + rng.index(60) as f64;
        let run = |mode: RefreshMode| {
            let mut cfg =
                ClusterConfig::racked_cluster(racks, per_rack, 2, 1).with_delay_intervals(1.0, 1.0);
            cfg.refresh_mode = mode;
            cfg.trace_level = mrp_engine::TraceLevel::Off;
            cfg.speculation = SpeculationConfig::enabled();
            cfg.shuffle = ShuffleConfig::fault_tolerant();
            cfg.reliability = ReliabilityConfig::predictive();
            cfg.detector = DetectorConfig::enabled();
            if use_grace {
                cfg.detector.confirmation_grace = mrp_sim::SimDuration::from_secs(2);
            }
            cfg.faults.events.push(FaultEvent {
                at: SimTime::from_secs(partition_at),
                kind: FaultKind::Partition {
                    node: NodeId(victim),
                },
            });
            cfg.faults.events.push(FaultEvent {
                at: SimTime::from_secs(heal_at),
                kind: FaultKind::PartitionHeal {
                    node: NodeId(victim),
                },
            });
            cfg.faults.events.push(FaultEvent {
                at: SimTime::from_secs(10),
                kind: FaultKind::Gray {
                    node: NodeId(gray_node),
                    slow_disk,
                    slow_net: 1.5,
                },
            });
            cfg.faults.random = Some(RandomFaults {
                rack_mtbf_secs: mtbf,
                mean_recovery_secs: Some(30.0),
                horizon: SimTime::from_secs(300),
                seed: 0xFEED + case,
            });
            let mut cluster = Cluster::new(
                cfg,
                Box::new(HfspScheduler::new(
                    PreemptionPrimitive::SuspendResume,
                    EvictionPolicy::ClosestToCompletion,
                )),
            );
            for &(i, tasks, reduces, arrival) in &jobs {
                cluster.submit_job_at(
                    JobSpec::synthetic(format!("job-{i}"), tasks, 64 * MIB).with_reduces(reduces),
                    SimTime::from_secs(arrival),
                );
            }
            cluster.run(SimTime::from_secs(24 * 3_600));
            (cluster.events_processed(), cluster.report())
        };
        let sharded = run(RefreshMode::Sharded);
        let full = run(RefreshMode::Full);
        assert!(sharded.1.all_jobs_complete(), "case {case} must complete");
        assert_eq!(
            sharded, full,
            "sharded vs full refresh diverged under the detector in case {case}"
        );
    }
}

/// First-commit-wins property, randomized: across partition/heal timings no
/// task ever commits twice, every job drains, and the heal never drives any
/// counter inconsistent (the engine's debug assertions would catch a
/// negative pending count; here the externally visible invariants are
/// checked on the report).
#[test]
fn partition_heals_never_double_commit() {
    for case in 0..10u64 {
        let mut rng = SimRng::new(0xFC0 + case);
        let racks = 2 + rng.index(2) as u32; // 2..=3
        let per_rack = 2 + rng.index(2) as u32; // 2..=3
        let nodes = racks * per_rack;
        let victim = rng.index(nodes as usize) as u32;
        let partition_at = 10 + rng.index(40) as u64;
        // Heal anywhere from well before the suspicion timeout to long
        // after the teardown and re-execution — both reconciliation
        // outcomes (commit and discard) get exercised across cases.
        let heal_at = partition_at + 2 + rng.index(120) as u64;
        let tasks = 12 + rng.index(12) as u32;
        let reduces = rng.index(3) as u32;
        let mut cfg = ClusterConfig::racked_cluster(racks, per_rack, 1, 1);
        cfg.trace_level = mrp_engine::TraceLevel::Off;
        cfg.speculation = SpeculationConfig::enabled();
        cfg.shuffle = ShuffleConfig::fault_tolerant();
        cfg.detector = DetectorConfig::enabled();
        cfg.faults.events.push(FaultEvent {
            at: SimTime::from_secs(partition_at),
            kind: FaultKind::Partition {
                node: NodeId(victim),
            },
        });
        cfg.faults.events.push(FaultEvent {
            at: SimTime::from_secs(heal_at),
            kind: FaultKind::PartitionHeal {
                node: NodeId(victim),
            },
        });
        let mut cluster = Cluster::new(
            cfg,
            Box::new(HfspScheduler::new(
                PreemptionPrimitive::SuspendResume,
                EvictionPolicy::ClosestToCompletion,
            )),
        );
        cluster.submit_job_at(
            JobSpec::synthetic("property", tasks, 64 * MIB).with_reduces(reduces),
            SimTime::ZERO,
        );
        cluster.submit_job_at(
            JobSpec::synthetic("tail", 4, 64 * MIB),
            SimTime::from_secs(partition_at),
        );
        cluster.run(SimTime::from_secs(24 * 3_600));
        let report = cluster.report();
        assert!(report.all_jobs_complete(), "case {case} must drain");
        let faults = report.faults;
        assert_eq!(
            faults.duplicate_commits, 0,
            "case {case} double-committed: {faults:?}"
        );
        // The run loop stops once every job drains, so a partition (or its
        // heal) scripted past that point never fires — heals can only trail
        // partitions, never exceed them.
        assert!(faults.partitions <= 1, "case {case}: {faults:?}");
        assert!(
            faults.partition_heals <= faults.partitions,
            "case {case}: {faults:?}"
        );
        // Every task finished exactly once, whatever the heal timing did.
        for job in &report.jobs {
            for task in &job.tasks {
                assert!(
                    (task.progress - 1.0).abs() < 1e-9,
                    "case {case}: task left incomplete"
                );
            }
        }
        // The run is repeatable bit-for-bit.
        // (Covered structurally by the pinned test above; here the cheap
        // invariant is that reconciliation never outruns the work done.)
        assert!(
            faults.reconciled_commits + faults.reconciled_discards
                <= u64::from(tasks + reduces) * 3,
            "case {case}: runaway reconciliation: {faults:?}"
        );
    }
}

/// The scheduling-action pipeline redesign re-expresses FIFO, FAIR and
/// HFSP as plugin bundles (`ActionPipeline::fifo/fair/hfsp`); the legacy
/// `FairScheduler`/`HfspScheduler` now wrap those bundles, while
/// `FifoScheduler` remains an independent engine-side implementation. Both
/// constructions must stay byte-identical on pinned seeds — same event
/// count, same `ClusterReport` — across three suites: suspend/resume
/// preemption churn, delay-scheduled DFS placement on a racked cluster,
/// and detector-confirmed partitions with scripted faults.
#[test]
fn plugin_pipelines_match_legacy_schedulers() {
    use mrp_preempt::ActionPipeline;

    type Factory<'a> = &'a dyn Fn(usize) -> Box<dyn SchedulerPolicy>;

    // Preemption churn: small cluster, batch + small jobs, lots of
    // suspend/resume traffic under FAIR/HFSP (16 map slots).
    fn churn_suite(make: Factory) -> (u64, ClusterReport) {
        let mut cluster = Cluster::new(ClusterConfig::small_cluster(8, 2, 1), make(16));
        for i in 0..4u32 {
            cluster.submit_job_at(
                JobSpec::synthetic(format!("batch-{i}"), 20, 64 * MIB),
                SimTime::from_secs(u64::from(i)),
            );
        }
        for i in 0..6u32 {
            cluster.submit_job_at(
                JobSpec::synthetic(format!("small-{i}"), 2, 16 * MIB),
                SimTime::from_secs(10 + 5 * u64::from(i)),
            );
        }
        cluster.run(SimTime::from_secs(24 * 3_600));
        (cluster.events_processed(), cluster.report())
    }

    // Delay scheduling: racked DFS inputs spread over 4 racks, locality
    // waits enabled, so the placement-verdict path is exercised (32 map
    // slots).
    fn delay_suite(make: Factory) -> (u64, ClusterReport) {
        let mut cfg = ClusterConfig::racked_cluster(4, 4, 2, 1).with_delay_intervals(1.0, 1.0);
        cfg.dfs_replication = 2;
        let mut cluster = Cluster::new(cfg, make(32));
        for i in 0..6u32 {
            let path = format!("/pipe/in-{i}");
            cluster
                .create_input_file_from(&path, 384 * MIB, Some(NodeId((i * 5) % 16)))
                .unwrap();
            cluster.submit_job_at(
                JobSpec::map_only(format!("job-{i}"), path),
                SimTime::from_secs(u64::from(4 * i)),
            );
        }
        cluster.run(SimTime::from_secs(24 * 3_600));
        (cluster.events_processed(), cluster.report())
    }

    // Partitions: suspicion-based detector, a healable node partition and a
    // detector-deferred kill on top of map/reduce work (12 map slots).
    fn partition_suite(make: Factory) -> (u64, ClusterReport) {
        let mut cfg = ClusterConfig::racked_cluster(3, 4, 1, 1);
        cfg.trace_level = mrp_engine::TraceLevel::Off;
        cfg.shuffle = ShuffleConfig::fault_tolerant();
        cfg.detector = DetectorConfig::enabled();
        cfg.faults.events.push(FaultEvent {
            at: SimTime::from_secs(25),
            kind: FaultKind::Partition { node: NodeId(4) },
        });
        cfg.faults.events.push(FaultEvent {
            at: SimTime::from_secs(80),
            kind: FaultKind::PartitionHeal { node: NodeId(4) },
        });
        cfg.faults.events.push(FaultEvent {
            at: SimTime::from_secs(40),
            kind: FaultKind::Kill { node: NodeId(9) },
        });
        cfg.faults.events.push(FaultEvent {
            at: SimTime::from_secs(110),
            kind: FaultKind::Rejoin { node: NodeId(9) },
        });
        let mut cluster = Cluster::new(cfg, make(12));
        for i in 0..3u32 {
            cluster.submit_job_at(
                JobSpec::synthetic(format!("mr-{i}"), 12, 96 * MIB).with_reduces(2),
                SimTime::from_secs(u64::from(3 * i)),
            );
        }
        for i in 0..4u32 {
            cluster.submit_job_at(
                JobSpec::synthetic(format!("small-{i}"), 2, 16 * MIB),
                SimTime::from_secs(12 + 8 * u64::from(i)),
            );
        }
        cluster.run(SimTime::from_secs(24 * 3_600));
        (cluster.events_processed(), cluster.report())
    }

    let legacy_fifo = |_: usize| -> Box<dyn SchedulerPolicy> { Box::new(FifoScheduler::new()) };
    let pipeline_fifo = |_: usize| -> Box<dyn SchedulerPolicy> { Box::new(ActionPipeline::fifo()) };
    let legacy_fair = |slots: usize| -> Box<dyn SchedulerPolicy> {
        Box::new(FairScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
            slots,
            SimDuration::from_secs(10),
        ))
    };
    let pipeline_fair = |slots: usize| -> Box<dyn SchedulerPolicy> {
        Box::new(ActionPipeline::fair(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
            slots,
            SimDuration::from_secs(10),
        ))
    };
    let legacy_hfsp = |_: usize| -> Box<dyn SchedulerPolicy> {
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        ))
    };
    let pipeline_hfsp = |_: usize| -> Box<dyn SchedulerPolicy> {
        Box::new(ActionPipeline::hfsp(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        ))
    };

    let pairs: [(&str, Factory, Factory); 3] = [
        ("fifo", &legacy_fifo, &pipeline_fifo),
        ("fair", &legacy_fair, &pipeline_fair),
        ("hfsp", &legacy_hfsp, &pipeline_hfsp),
    ];
    type Suite = for<'a> fn(Factory<'a>) -> (u64, ClusterReport);
    let suites: [(&str, Suite); 3] = [
        ("churn", churn_suite),
        ("delay", delay_suite),
        ("partition", partition_suite),
    ];
    for (policy, legacy, pipeline) in pairs {
        for (suite, run) in suites {
            let reference = run(legacy);
            let composed = run(pipeline);
            assert!(
                reference.1.all_jobs_complete(),
                "{policy}/{suite}: legacy run must complete"
            );
            assert_eq!(
                reference, composed,
                "{policy} plugin bundle diverged from the legacy scheduler in the {suite} suite"
            );
        }
    }
}

/// The rack-sharded refresh path (per-rack dirty lists, delta-maintained
/// free-slot counters) must be observationally identical to the naive
/// rebuild-everything reference, across randomized topologies, schedulers
/// and workload mixes.
#[test]
fn sharded_and_full_refresh_produce_identical_reports() {
    for case in 0..8u64 {
        let mut rng = SimRng::new(0x5AAD + case);
        let racks = 2 + rng.index(3) as u32; // 2..=4
        let per_rack = 2 + rng.index(3) as u32; // 2..=4
        let nodes = racks * per_rack;
        let job_count = 3 + rng.index(5); // 3..=7
                                          // Pre-draw the workload so both runs see identical submissions.
        let mut jobs = Vec::new();
        for i in 0..job_count {
            let dfs = rng.chance(0.5);
            let size_mib = 64 + rng.index(512) as u64;
            let arrival = rng.index(60) as u64;
            let writer = rng.index(nodes as usize) as u32;
            jobs.push((i, dfs, size_mib, arrival, writer));
        }
        let use_fifo = rng.chance(0.33);
        let run = |mode: RefreshMode| {
            let mut cfg = ClusterConfig::racked_cluster(racks, per_rack, 2, 1);
            cfg.refresh_mode = mode;
            cfg.trace_level = mrp_engine::TraceLevel::Off;
            let scheduler: Box<dyn SchedulerPolicy> = if use_fifo {
                Box::new(mrp_engine::FifoScheduler::new())
            } else {
                Box::new(HfspScheduler::new(
                    PreemptionPrimitive::SuspendResume,
                    EvictionPolicy::ClosestToCompletion,
                ))
            };
            let mut cluster = Cluster::new(cfg, scheduler);
            for &(i, dfs, size_mib, arrival, writer) in &jobs {
                let name = format!("job-{i}");
                let spec = if dfs {
                    let path = format!("/in-{i}");
                    cluster
                        .create_input_file_from(&path, size_mib * MIB, Some(NodeId(writer)))
                        .unwrap();
                    JobSpec::map_only(name, path)
                } else {
                    JobSpec::synthetic(name, 1 + (size_mib / 64) as u32, 64 * MIB)
                };
                cluster.submit_job_at(spec, SimTime::from_secs(arrival));
            }
            cluster.run(SimTime::from_secs(24 * 3_600));
            (cluster.events_processed(), cluster.report())
        };
        let sharded = run(RefreshMode::Sharded);
        let full = run(RefreshMode::Full);
        assert!(sharded.1.all_jobs_complete(), "case {case} must complete");
        assert_eq!(
            sharded, full,
            "sharded vs full refresh diverged in case {case}"
        );
    }
}

/// Fixed-seed pinned outcome of the block-granular swap device. The
/// memory-pressure scenario (HFSP suspend/resume churn with working sets
/// larger than RAM) exercises the whole device — bitmap allocation, LRU
/// block reuse, swap-out/swap-in timing — so pinning its exact counters
/// catches any perturbation of the swap path, not just of the scheduler.
#[test]
fn fixed_seed_swap_device_run_is_pinned() {
    let cfg = MemoryPressureConfig::small(SwapConfig::enabled());
    let run = run_memory_pressure(&cfg);
    assert!(run.report.all_jobs_complete());
    assert_eq!(run.events_processed, PINNED_SWAP_EVENTS);
    assert_eq!(run.report.finished_at.as_micros(), PINNED_SWAP_FINISH);
    assert_eq!((run.swap_out_bytes, run.swap_in_bytes), PINNED_SWAP_TRAFFIC);
    assert_eq!(run.suspend_cycles, PINNED_SWAP_CYCLES);
    assert_eq!(run.oom_kills, 0);
    // Virtual seconds stalled on swap I/O, accumulated by the device's
    // timing model (f64, but derived from integer-microsecond durations —
    // exact equality is deterministic).
    assert_eq!(run.swap_io_secs, PINNED_SWAP_IO_SECS);

    let again = run_memory_pressure(&cfg);
    assert_eq!(again.report, run.report);
    assert_eq!(again.events_processed, run.events_processed);
}

const PINNED_SWAP_EVENTS: u64 = 822;
const PINNED_SWAP_FINISH: u64 = 419_769_351;
const PINNED_SWAP_TRAFFIC: (u64, u64) = (29_511_961_800, 54_697_918_464);
const PINNED_SWAP_CYCLES: u64 = 29;
const PINNED_SWAP_IO_SECS: f64 = 796.151_36;

/// A `SwapConfig` with `enabled: false` must be inert no matter how its
/// other knobs are set: the legacy byte-granular swap accounting runs and
/// every existing pinned trace stays byte-identical. Guards the default-off
/// gate that keeps the device opt-in.
#[test]
fn disabled_swap_device_is_byte_identical() {
    let weird_but_off = SwapConfig {
        enabled: false,
        block_size: 256 * 1024,
        lazy_resume: true,
        resume_prefetch: 0.75,
    };

    // Preemption-churn shape (the sim_throughput-style suspend/resume mix).
    let mut stock = churn_cluster();
    stock.run(SimTime::from_secs(24 * 3_600));
    let mut tweaked =
        churn_cluster_cfg(ClusterConfig::small_cluster(8, 2, 1).with_swap(weird_but_off));
    tweaked.run(SimTime::from_secs(24 * 3_600));
    assert_eq!(tweaked.report(), stock.report());
    assert_eq!(tweaked.events_processed(), stock.events_processed());

    // Fault-churn shape (kills, rack outages, speculation, re-replication).
    let mut stock = fault_churn_cluster();
    stock.run(SimTime::from_secs(24 * 3_600));
    let mut tweaked = fault_churn_cluster_cfg(fault_churn_config().with_swap(weird_but_off));
    tweaked.run(SimTime::from_secs(24 * 3_600));
    assert_eq!(tweaked.report(), stock.report());
    assert_eq!(tweaked.events_processed(), stock.events_processed());
}
