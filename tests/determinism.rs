//! Golden fixed-seed determinism tests.
//!
//! The allocation-lean core refactor (slab/generation event queue, dirty-
//! tracked scheduler views, per-node command index, incremental completion
//! counting) must not change *what* the simulator computes, only how fast.
//! These tests pin concrete fixed-seed outcomes so any future change to the
//! hot path that perturbs scheduling order or timing is caught immediately —
//! the same role a golden `ClusterReport` diff would play.

use hadoop_os_preempt::prelude::*;
use mrp_engine::Cluster;
use mrp_experiments::run_once;
use mrp_sim::SimTime;

#[test]
fn fixed_seed_paper_scenario_is_pinned() {
    let run = run_once(
        &ScenarioConfig::lightweight(PreemptionPrimitive::SuspendResume, 0.5),
        1,
    );
    // Exact values recorded from the post-refactor core (identical in debug
    // and release builds; the clock is integer microseconds throughout).
    assert_eq!(run.report.finished_at.as_micros(), 161_862_486);
    assert_eq!(run.sojourn_th_secs, 81.622_288);
    assert_eq!(run.makespan_secs, 161.862_486);
    assert_eq!(run.tl_suspend_cycles, 1);
    assert_eq!(run.tl_attempts, 1);
    assert_eq!(run.swap_out_bytes, 0);
}

fn churn_cluster() -> Cluster {
    let mut cluster = Cluster::new(
        ClusterConfig::small_cluster(8, 2, 1),
        Box::new(HfspScheduler::new(
            PreemptionPrimitive::SuspendResume,
            EvictionPolicy::ClosestToCompletion,
        )),
    );
    for i in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("batch-{i}"), 20, 64 * MIB),
            SimTime::from_secs(u64::from(i)),
        );
    }
    for i in 0..6u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{i}"), 2, 16 * MIB),
            SimTime::from_secs(10 + 5 * u64::from(i)),
        );
    }
    cluster
}

#[test]
fn fixed_seed_preemption_churn_run_is_pinned() {
    let mut cluster = churn_cluster();
    cluster.run(SimTime::from_secs(24 * 3_600));
    let report = cluster.report();
    assert!(report.all_jobs_complete());
    let suspends: u32 = report
        .jobs
        .iter()
        .flat_map(|j| j.tasks.iter())
        .map(|t| t.suspend_cycles)
        .sum();
    // Pinned fixed-seed outcome of the HFSP suspend/resume churn scenario.
    assert_eq!(cluster.events_processed(), 610);
    assert_eq!(report.finished_at.as_micros(), 83_273_436);
    assert_eq!(suspends, 10);

    // And the run is bit-for-bit repeatable within the same binary.
    let mut again = churn_cluster();
    again.run(SimTime::from_secs(24 * 3_600));
    assert_eq!(again.report(), report);
    assert_eq!(again.events_processed(), cluster.events_processed());
}
