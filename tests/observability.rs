//! The observability layer must be a pure observer: switching it on may
//! never change *what* the simulator computes — only record it. These tests
//! run the determinism suites' scenario shapes (preemption churn,
//! detector/partition faults, swap-device memory pressure) twice, obs-off
//! and obs-on, and require byte-identical reports and event counts; then
//! they sanity-check what the observer captured (spans balance and export
//! as valid Chrome traces, the series covers the run, the profiler accounts
//! for the loop's wall time).

use hadoop_os_preempt::prelude::*;
use mrp_engine::{
    Cluster, DetectorConfig, FaultEvent, FaultKind, NodeId, RackId, ShuffleConfig,
    SpeculationConfig, SwapConfig,
};
use mrp_preempt::obs_export::{chrome_trace_json, validate_chrome_trace};
use mrp_sim::SimTime;

fn hfsp() -> Box<dyn SchedulerPolicy> {
    Box::new(HfspScheduler::new(
        PreemptionPrimitive::SuspendResume,
        EvictionPolicy::ClosestToCompletion,
    ))
}

/// The determinism suite's preemption-churn shape: 8 nodes, batch + small
/// jobs, lots of suspend/resume traffic under HFSP.
fn churn_cluster(cfg: ClusterConfig) -> Cluster {
    let mut cluster = Cluster::new(cfg, hfsp());
    for i in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("batch-{i}"), 20, 64 * MIB),
            SimTime::from_secs(u64::from(i)),
        );
    }
    for i in 0..6u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{i}"), 2, 16 * MIB),
            SimTime::from_secs(10 + 5 * u64::from(i)),
        );
    }
    cluster
}

fn churn_config() -> ClusterConfig {
    ClusterConfig::small_cluster(8, 2, 1)
}

/// Detector + partition + gray-failure shape (a condensed version of the
/// determinism suite's detector scenario): every span family fires —
/// attempts, suspend cycles, shuffle stalls, partition windows.
fn partition_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::racked_cluster(3, 4, 1, 1);
    cfg.trace_level = mrp_engine::TraceLevel::Off;
    cfg.speculation = SpeculationConfig::enabled();
    cfg.shuffle = ShuffleConfig::fault_tolerant();
    cfg.detector = DetectorConfig::enabled();
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(30),
        kind: FaultKind::Partition { node: NodeId(5) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(90),
        kind: FaultKind::PartitionHeal { node: NodeId(5) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(50),
        kind: FaultKind::RackOutage { rack: RackId(2) },
    });
    cfg.faults.events.push(FaultEvent {
        at: SimTime::from_secs(110),
        kind: FaultKind::RackRejoin { rack: RackId(2) },
    });
    cfg
}

fn partition_cluster(cfg: ClusterConfig) -> Cluster {
    let mut cluster = Cluster::new(cfg, hfsp());
    for i in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("mr-{i}"), 14, 96 * MIB).with_reduces(2),
            SimTime::from_secs(u64::from(2 * i)),
        );
    }
    for i in 0..5u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{i}"), 2, 16 * MIB),
            SimTime::from_secs(15 + 9 * u64::from(i)),
        );
    }
    cluster
}

/// Swap-device memory-pressure shape (the determinism suite's swap scenario
/// in miniature): working sets overflow RAM, so suspensions page real state
/// through the block-granular swap device.
fn swap_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::small_cluster(4, 2, 1)
        .with_trace_level(mrp_engine::TraceLevel::Off)
        .with_swap(SwapConfig::enabled());
    for node in &mut cfg.nodes {
        node.os.memory.total_ram = 3 * GIB;
        node.os.memory.swap_capacity = 16 * GIB;
    }
    cfg
}

fn swap_cluster(cfg: ClusterConfig) -> Cluster {
    let mut cluster = Cluster::new(cfg, hfsp());
    for j in 0..2u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("batch-{j}"), 8, 64 * MIB)
                .with_profile(TaskProfile::memory_hungry(1536 * MIB)),
            SimTime::from_secs(u64::from(j)),
        );
    }
    for j in 0..4u32 {
        cluster.submit_job_at(
            JobSpec::synthetic(format!("small-{j}"), 2, 64 * MIB),
            SimTime::from_secs(45 + 30 * u64::from(j)),
        );
    }
    cluster
}

/// Observing a run may not change it: same events, same report, byte for
/// byte, across all three scenario families.
type Suite = (
    &'static str,
    fn() -> ClusterConfig,
    fn(ClusterConfig) -> Cluster,
);

#[test]
fn obs_on_runs_are_byte_identical() {
    let suites: [Suite; 3] = [
        ("churn", churn_config, churn_cluster),
        ("partition", partition_config, partition_cluster),
        ("swap", swap_config, swap_cluster),
    ];
    for (name, config, build) in suites {
        let mut plain = build(config());
        plain.run(SimTime::from_secs(24 * 3_600));
        let mut observed = build(config().with_obs(ObsConfig::full()));
        observed.run(SimTime::from_secs(24 * 3_600));

        assert!(plain.report().all_jobs_complete(), "{name} must drain");
        assert_eq!(
            observed.events_processed(),
            plain.events_processed(),
            "{name}: observation changed the event count"
        );
        assert_eq!(
            observed.report(),
            plain.report(),
            "{name}: observation changed the report"
        );
        assert!(plain.observability().is_none());

        // What the observer captured is sane: spans were recorded and all
        // closed (the workload drained), the series sampled the whole run.
        let obs = observed.observability().expect("obs enabled");
        assert!(!obs.spans().is_empty(), "{name}: no spans recorded");
        assert_eq!(obs.open_spans(), 0, "{name}: spans left open");
        assert_eq!(obs.dropped_spans(), 0, "{name}: span cap hit");
        let series = obs.series().expect("series sampling on");
        let expected_rows = observed.now().as_micros() / obs.config().sample_interval.as_micros();
        assert!(
            series.rows().len() as u64 >= expected_rows.saturating_sub(1),
            "{name}: series misses samples ({} rows for {expected_rows} intervals)",
            series.rows().len()
        );
        for row in series.rows() {
            assert_eq!(row.values.len(), series.columns().len());
        }
    }
}

/// Every scenario's span trace exports as a schema-valid Chrome trace, and
/// the per-family duration histograms agree with the span counts.
#[test]
fn span_traces_export_as_valid_chrome_json() {
    let suites: [(&str, Cluster); 3] = [
        (
            "churn",
            churn_cluster(churn_config().with_obs(ObsConfig::full())),
        ),
        (
            "partition",
            partition_cluster(partition_config().with_obs(ObsConfig::full())),
        ),
        (
            "swap",
            swap_cluster(swap_config().with_obs(ObsConfig::full())),
        ),
    ];
    for (name, mut cluster) in suites {
        cluster.run(SimTime::from_secs(24 * 3_600));
        let obs = cluster.observability().expect("obs enabled");
        let text = chrome_trace_json(obs.spans(), cluster.now()).pretty();
        validate_chrome_trace(&text).unwrap_or_else(|e| panic!("{name}: invalid trace: {e}"));

        let closed = obs.spans().iter().filter(|s| s.end.is_some()).count() as u64;
        let histogrammed: u64 = [
            "attempt_duration_us",
            "suspend_cycle_us",
            "shuffle_stall_us",
            "partition_window_us",
        ]
        .iter()
        .map(|h| obs.registry().histogram_stats(h).map_or(0, |s| s.count))
        .sum();
        assert_eq!(
            histogrammed, closed,
            "{name}: histogram/span count mismatch"
        );
    }
    // The partition scenario must have exercised every span family.
    let mut cluster = partition_cluster(partition_config().with_obs(ObsConfig::full()));
    cluster.run(SimTime::from_secs(24 * 3_600));
    let obs = cluster.observability().unwrap();
    for kind in [
        mrp_engine::SpanKind::Attempt,
        mrp_engine::SpanKind::SuspendCycle,
        mrp_engine::SpanKind::Partition,
    ] {
        assert!(
            obs.spans().iter().any(|s| s.kind == kind),
            "partition scenario recorded no {kind:?} spans"
        );
    }
}

/// The profiler must attribute nearly all of the event loop's wall time to
/// event kinds (the batched-timing design loses at most the final partial
/// batch per window), and its counts must cover every processed event.
#[test]
fn profiler_attributes_loop_wall_time() {
    let mut cluster = churn_cluster(churn_config().with_obs(ObsConfig::full()));
    cluster.run(SimTime::from_secs(24 * 3_600));
    let events_processed = cluster.events_processed();
    let obs = cluster.observability().expect("obs enabled");
    let profile = obs.profile().expect("profiling on");
    assert!(
        profile.attribution() >= 0.95,
        "only {:.1}% of loop wall time attributed",
        100.0 * profile.attribution()
    );
    // The profiler sees the queue events plus the computed wheel heartbeats.
    assert!(
        profile.total_events() >= events_processed,
        "profiler counted {} events for {events_processed} processed",
        profile.total_events()
    );
    let table = profile.table();
    assert!(table.contains("heartbeat_wheel"));
    assert!(table.contains("loop wall"));
    // Scheduler actions were counted: churn launches and suspends tasks.
    let actions: u64 = profile.actions.iter().map(|r| r.count).sum();
    assert!(actions > 0, "no scheduler actions recorded");
    assert!(profile
        .actions
        .iter()
        .any(|r| r.name == "suspend" && r.count > 0));
}

/// `ObsConfig::default()` (enabled = false) must leave the cluster without
/// any observability state no matter how the other knobs are set, and
/// `validate` must reject nonsensical enabled configs.
#[test]
fn disabled_and_invalid_configs() {
    let weird_but_off = ObsConfig {
        sample_interval: mrp_sim::SimDuration::ZERO,
        max_spans: 0,
        ..ObsConfig::default()
    };
    let cfg = churn_config().with_obs(weird_but_off);
    cfg.validate().expect("disabled obs validates");
    let mut cluster = churn_cluster(cfg);
    cluster.run(SimTime::from_secs(24 * 3_600));
    assert!(cluster.observability().is_none());

    let mut bad = ObsConfig::full();
    bad.sample_interval = mrp_sim::SimDuration::ZERO;
    assert!(churn_config().with_obs(bad).validate().is_err());
    let mut bad = ObsConfig::full();
    bad.max_spans = 0;
    assert!(churn_config().with_obs(bad).validate().is_err());
}
