//! # hadoop-os-preempt
//!
//! A full reproduction of **"OS-Assisted Task Preemption for Hadoop"**
//! (Pastorelli, Dell'Amico, Michiardi — ICDCS 2014) as a Rust workspace:
//! a discrete-event Hadoop-1 substrate (JobTracker, TaskTrackers, heartbeats,
//! HDFS, a per-node OS model with demand paging), the paper's suspend/resume
//! preemption primitive next to the `wait` and `kill` baselines, the
//! trigger-driven dummy scheduler used in the evaluation, preemptive
//! FAIR/HFSP schedulers, a real-OS `SIGTSTP`/`SIGCONT` prototype, and an
//! experiment harness that regenerates every figure.
//!
//! This facade crate re-exports the workspace so applications can depend on a
//! single package:
//!
//! ```
//! use hadoop_os_preempt::prelude::*;
//!
//! let high = JobSpec::map_only("th", "/input/th-512mb").with_priority(10);
//! let plan = DummyPlan::paper_scenario(PreemptionPrimitive::SuspendResume, "tl", high, 0.5);
//! let scheduler = DummyScheduler::new(plan);
//! let triggers = scheduler.required_triggers();
//! let mut cluster = Cluster::new(ClusterConfig::paper_single_node(), Box::new(scheduler));
//! for (path, len) in mrp_workload::two_job_input_files() {
//!     cluster.create_input_file(&path, len).unwrap();
//! }
//! for (job, task, fraction) in triggers {
//!     cluster.add_progress_trigger(&job, task, fraction);
//! }
//! cluster.submit_job(JobSpec::map_only("tl", "/input/tl-512mb"));
//! cluster.run(SimTime::from_secs(3_600));
//! assert!(cluster.report().all_jobs_complete());
//! ```

#![warn(missing_docs)]

pub use mrp_dfs;
pub use mrp_engine;
pub use mrp_experiments;
pub use mrp_oschild;
pub use mrp_preempt;
pub use mrp_sim;
pub use mrp_simos;
pub use mrp_workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mrp_engine::{
        Cluster, ClusterConfig, ClusterReport, FifoScheduler, JobSpec, ObsConfig, SchedulerPolicy,
        TaskProfile,
    };
    pub use mrp_experiments::{run_figure, run_scenario, Figure, ScenarioConfig};
    pub use mrp_preempt::{
        DummyPlan, DummyScheduler, EvictionPolicy, FairScheduler, HfspScheduler, NatjamModel,
        PreemptionPrimitive,
    };
    pub use mrp_sim::{SimDuration, SimTime, GIB, MIB};
    pub use mrp_workload::{two_job_input_files, two_job_scenario, SwimConfig, SwimGenerator};
}
